package dht

import (
	"slices"
	"time"

	"bitswapmon/internal/engine"
	"bitswapmon/internal/otrace"
	"bitswapmon/internal/simnet"
)

// Mode selects DHT participation.
type Mode int

// DHT participation modes (Sec. III-A): servers store records and answer
// RPCs; clients only query and are invisible to crawlers.
const (
	ModeServer Mode = iota + 1
	ModeClient
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeServer:
		return "server"
	case ModeClient:
		return "client"
	default:
		return "unknown"
	}
}

// DefaultAlpha is the lookup concurrency factor.
const DefaultAlpha = 3

// DefaultRPCTimeout is how long a single RPC may take before it is counted
// as failed.
const DefaultRPCTimeout = 2 * time.Second

// RPC message types exchanged over the simulated network.
type (
	findNodeReq struct {
		RPCID  uint64
		Target simnet.NodeID
		From   PeerInfo
	}
	findNodeResp struct {
		RPCID  uint64
		Closer []PeerInfo
	}
	getProvidersReq struct {
		RPCID uint64
		Key   Key
		From  PeerInfo
	}
	getProvidersResp struct {
		RPCID     uint64
		Providers []PeerInfo
		Closer    []PeerInfo
	}
	addProviderReq struct {
		Key      Key
		Provider PeerInfo
	}
)

type pendingRPC struct {
	onFindNode     func(findNodeResp, bool)
	onGetProviders func(getProvidersResp, bool)
	span           *otrace.SpanHandle // dht.rpc span; nil when untraced
	expired        bool
}

// Config parametrises a DHT instance.
type Config struct {
	// Mode selects server or client participation. Zero selects ModeServer.
	Mode Mode
	// K is the bucket / closest-set size; 0 selects DefaultK.
	K int
	// Alpha is the lookup concurrency; 0 selects DefaultAlpha.
	Alpha int
	// RPCTimeout bounds individual RPCs; 0 selects DefaultRPCTimeout.
	RPCTimeout time.Duration
	// ProviderTTL bounds provider record lifetime; 0 selects the default.
	ProviderTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModeServer
	}
	if c.K == 0 {
		c.K = DefaultK
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = DefaultRPCTimeout
	}
	if c.ProviderTTL == 0 {
		c.ProviderTTL = DefaultProviderTTL
	}
	return c
}

// DHT is one node's view of the Kademlia overlay. It is driven entirely by
// the simnet event loop (no goroutines): RPC replies and timeouts arrive as
// events, lookups are callback state machines.
type DHT struct {
	net  engine.Engine
	self PeerInfo
	cfg  Config
	tr   engine.Tracing // nil when the engine does not support tracing

	rt      *RoutingTable
	provs   *ProviderStore
	nextRPC uint64
	pending map[uint64]*pendingRPC

	// stats
	lookupsStarted uint64
	rpcsSent       uint64
	rpcsTimedOut   uint64
}

// New creates a DHT for the node identified by self.
func New(net engine.Engine, self PeerInfo, cfg Config) *DHT {
	cfg = cfg.withDefaults()
	self.Server = cfg.Mode == ModeServer
	return &DHT{
		net:     net,
		self:    self,
		cfg:     cfg,
		tr:      engine.TracingOf(net),
		rt:      NewRoutingTable(self.ID, cfg.K),
		provs:   NewProviderStore(cfg.ProviderTTL),
		pending: make(map[uint64]*pendingRPC),
	}
}

// Self returns the local peer info.
func (d *DHT) Self() PeerInfo { return d.self }

// Mode returns the participation mode.
func (d *DHT) Mode() Mode { return d.cfg.Mode }

// RoutingTable exposes the routing table (read-mostly; used by the crawler
// responder and by diagnostics).
func (d *DHT) RoutingTable() *RoutingTable { return d.rt }

// Observe records a peer we learned about (e.g. via an inbound connection),
// feeding the routing table.
func (d *DHT) Observe(p PeerInfo) { d.rt.Add(p) }

// HandleMessage processes a DHT RPC delivered by the network. It reports
// whether the message was a DHT message.
func (d *DHT) HandleMessage(from simnet.NodeID, msg any) bool {
	switch m := msg.(type) {
	case findNodeReq:
		d.rt.Add(m.From)
		if d.cfg.Mode != ModeServer {
			return true // clients do not answer
		}
		closer := d.rt.Closest(m.Target, d.cfg.K)
		d.reply(from, findNodeResp{RPCID: m.RPCID, Closer: closer})
		return true
	case getProvidersReq:
		d.rt.Add(m.From)
		if d.cfg.Mode != ModeServer {
			return true
		}
		resp := getProvidersResp{
			RPCID:     m.RPCID,
			Providers: d.provs.Get(m.Key, d.net.Now()),
			Closer:    d.rt.Closest(m.Key.AsNodeID(), d.cfg.K),
		}
		d.reply(from, resp)
		return true
	case addProviderReq:
		if d.cfg.Mode == ModeServer {
			d.provs.Add(m.Key, m.Provider, d.net.Now())
		}
		return true
	case findNodeResp:
		if p, ok := d.pending[m.RPCID]; ok && p.onFindNode != nil {
			delete(d.pending, m.RPCID)
			p.span.End(d.now())
			p.onFindNode(m, true)
		}
		return true
	case getProvidersResp:
		if p, ok := d.pending[m.RPCID]; ok && p.onGetProviders != nil {
			delete(d.pending, m.RPCID)
			p.span.End(d.now())
			p.onGetProviders(m, true)
		}
		return true
	default:
		return false
	}
}

func (d *DHT) reply(to simnet.NodeID, msg any) {
	// Replies inherit the inbound request's trace context so the response hop
	// nests under the caller's dht.rpc span. The connection may already be
	// gone; replies are best-effort.
	var tc otrace.Ctx
	if d.tr != nil {
		tc = d.tr.InboundCtx(d.self.ID)
	}
	_ = engine.SendCtx(d.net, d.tr, tc, "dht.resp", d.self.ID, to, msg)
}

// now returns the exact virtual time of the event currently running for this
// node (falling back to the engine clock on engines without tracing).
func (d *DHT) now() time.Time { return engine.EventTime(d.net, d.tr, d.self.ID) }

// tracer returns the engine's span recorder, nil when tracing is off.
func (d *DHT) tracer() *otrace.Tracer {
	if d.tr == nil {
		return nil
	}
	return d.tr.Tracer()
}

// dial ensures a connection to p exists. DHT RPCs ride on real connections;
// connections opened during searches persist, which is the mechanism that
// lets passive monitors see DHT clients (Sec. IV-C).
func (d *DHT) dial(p PeerInfo) bool {
	if d.net.Connected(d.self.ID, p.ID) {
		return true
	}
	return d.net.Connect(d.self.ID, p.ID) == nil
}

// rpcSpan opens a dht.rpc span under tc (nil handle when untraced), keyed by
// the queried peer: one lookup step issues several RPCs in one event, and the
// peer is what tells their span IDs apart.
func (d *DHT) rpcSpan(tc otrace.Ctx, peer simnet.NodeID) *otrace.SpanHandle {
	if !tc.Sampled() {
		return nil
	}
	// Async: a lookup that reaches its provider target finishes without
	// awaiting in-flight RPCs.
	return d.tracer().StartKeyed(tc, "dht.rpc", d.self.ID.String(), peer.String(), d.now()).MarkAsync()
}

func (d *DHT) sendFindNode(tc otrace.Ctx, p PeerInfo, target simnet.NodeID, cb func(findNodeResp, bool)) {
	if !p.Server || !d.dial(p) {
		cb(findNodeResp{}, false)
		return
	}
	d.nextRPC++
	id := d.nextRPC
	span := d.rpcSpan(tc, p.ID)
	d.pending[id] = &pendingRPC{onFindNode: cb, span: span}
	d.rpcsSent++
	if err := engine.SendCtx(d.net, d.tr, span.Ctx(), "dht.req", d.self.ID, p.ID, findNodeReq{RPCID: id, Target: target, From: d.self}); err != nil {
		delete(d.pending, id)
		span.EndDropped(d.now())
		cb(findNodeResp{}, false)
		return
	}
	d.expireAfter(id)
}

func (d *DHT) sendGetProviders(tc otrace.Ctx, p PeerInfo, key Key, cb func(getProvidersResp, bool)) {
	if !p.Server || !d.dial(p) {
		cb(getProvidersResp{}, false)
		return
	}
	d.nextRPC++
	id := d.nextRPC
	span := d.rpcSpan(tc, p.ID)
	d.pending[id] = &pendingRPC{onGetProviders: cb, span: span}
	d.rpcsSent++
	if err := engine.SendCtx(d.net, d.tr, span.Ctx(), "dht.req", d.self.ID, p.ID, getProvidersReq{RPCID: id, Key: key, From: d.self}); err != nil {
		delete(d.pending, id)
		span.EndDropped(d.now())
		cb(getProvidersResp{}, false)
		return
	}
	d.expireAfter(id)
}

func (d *DHT) expireAfter(id uint64) {
	d.net.AfterOn(d.self.ID, d.cfg.RPCTimeout, func() {
		p, ok := d.pending[id]
		if !ok {
			return
		}
		delete(d.pending, id)
		d.rpcsTimedOut++
		p.expired = true
		p.span.EndDropped(d.now())
		if p.onFindNode != nil {
			p.onFindNode(findNodeResp{}, false)
		}
		if p.onGetProviders != nil {
			p.onGetProviders(getProvidersResp{}, false)
		}
	})
}

// lookup is the iterative Kademlia search state machine shared by
// FindClosest and FindProviders.
type lookup struct {
	d         *DHT
	target    simnet.NodeID
	key       Key
	providers bool // query providers instead of find-node
	wantProvs int
	span      *otrace.SpanHandle // dht.lookup span; nil when untraced
	tc        otrace.Ctx         // span's context, parent of per-RPC spans

	seen     map[simnet.NodeID]bool
	cand     []lookupCand // every seen peer; sorted by distance when sorted is set
	sorted   bool
	inflight int

	foundProvs map[simnet.NodeID]PeerInfo
	finished   bool
	onDone     func(closest []PeerInfo, providers []PeerInfo)
}

// lookupCand is one candidate with its queried mark inline. The mark used to
// live in a map keyed by the 32-byte NodeID, which made every step() scan pay
// a hash per candidate; as a struct field it travels with the entry through
// re-sorts for free.
type lookupCand struct {
	PeerInfo
	queried bool
}

func (l *lookup) addCandidates(peers []PeerInfo) {
	for _, p := range peers {
		if p.ID == l.d.self.ID || l.seen[p.ID] {
			continue
		}
		l.seen[p.ID] = true
		l.cand = append(l.cand, lookupCand{PeerInfo: p})
		l.sorted = false
	}
}

// candidates returns every seen peer ordered by distance to the target. The
// slice is owned by the lookup and re-sorted only after new candidates
// arrive; step() runs after every RPC response, and re-sorting a mostly
// sorted slice is much cheaper than the former copy-the-map-and-sort.
func (l *lookup) candidates() []lookupCand {
	if !l.sorted {
		slices.SortFunc(l.cand, func(a, b lookupCand) int {
			return simnet.DistanceCompare(l.target, a.ID, b.ID)
		})
		l.sorted = true
	}
	return l.cand
}

func (l *lookup) step() {
	if l.finished {
		return
	}
	if l.providers && len(l.foundProvs) >= l.wantProvs {
		l.finish()
		return
	}
	cands := l.candidates()
	// The lookup terminates when the k closest known peers have all been
	// queried (or failed).
	kClosest := cands
	if len(kClosest) > l.d.cfg.K {
		kClosest = kClosest[:l.d.cfg.K]
	}
	allQueried := true
	for i := range kClosest {
		if kClosest[i].Server && !kClosest[i].queried {
			allQueried = false
			break
		}
	}
	if allQueried && l.inflight == 0 {
		l.finish()
		return
	}
	for i := range cands {
		if l.inflight >= l.d.cfg.Alpha {
			break
		}
		c := &cands[i]
		if !c.Server || c.queried {
			continue
		}
		// Mark before sending: failed sends re-enter step() synchronously,
		// and synchronous re-entry never appends or re-sorts cand, so the
		// write through c stays visible to the recursive scan.
		c.queried = true
		l.inflight++
		peer := c.PeerInfo
		if l.providers {
			l.d.sendGetProviders(l.tc, peer, l.key, func(resp getProvidersResp, ok bool) {
				l.inflight--
				if ok {
					l.d.rt.Add(peer)
					for _, prov := range resp.Providers {
						l.foundProvs[prov.ID] = prov
					}
					l.addCandidates(resp.Closer)
				}
				l.step()
			})
		} else {
			l.d.sendFindNode(l.tc, peer, l.target, func(resp findNodeResp, ok bool) {
				l.inflight--
				if ok {
					l.d.rt.Add(peer)
					l.addCandidates(resp.Closer)
				}
				l.step()
			})
		}
	}
	if l.inflight == 0 {
		// No queryable candidates remain.
		l.finish()
	}
}

func (l *lookup) finish() {
	if l.finished {
		return
	}
	l.finished = true
	l.span.End(l.d.now())
	cands := l.candidates()
	if len(cands) > l.d.cfg.K {
		cands = cands[:l.d.cfg.K]
	}
	closest := make([]PeerInfo, len(cands))
	for i := range cands {
		closest[i] = cands[i].PeerInfo
	}
	provs := make([]PeerInfo, 0, len(l.foundProvs))
	for _, p := range l.foundProvs {
		provs = append(provs, p)
	}
	SortByDistance(provs, l.target)
	l.onDone(closest, provs)
}

// FindClosest runs an iterative lookup for the k peers closest to target and
// invokes done with the result. Newly discovered peers enter the routing
// table; connections opened along the way persist.
func (d *DHT) FindClosest(target simnet.NodeID, done func([]PeerInfo)) {
	d.lookupsStarted++
	l := &lookup{
		d:      d,
		target: target,
		seen:   make(map[simnet.NodeID]bool),
		onDone: func(closest, _ []PeerInfo) { done(closest) },
	}
	l.addCandidates(d.rt.Closest(target, d.cfg.K))
	l.step()
}

// FindProviders searches provider records for key, stopping early once want
// providers are known (want <= 0 means exhaust the lookup).
func (d *DHT) FindProviders(key Key, want int, done func([]PeerInfo)) {
	d.FindProvidersTraced(otrace.Ctx{}, key, want, done)
}

// FindProvidersTraced is FindProviders under a trace context: the whole
// lookup becomes a dht.lookup span with one dht.rpc child per GET_PROVIDERS
// round.
func (d *DHT) FindProvidersTraced(tc otrace.Ctx, key Key, want int, done func([]PeerInfo)) {
	if want <= 0 {
		want = 1 << 30
	}
	d.lookupsStarted++
	l := &lookup{
		d:          d,
		target:     key.AsNodeID(),
		key:        key,
		providers:  true,
		wantProvs:  want,
		seen:       make(map[simnet.NodeID]bool),
		foundProvs: make(map[simnet.NodeID]PeerInfo),
		onDone:     func(_, provs []PeerInfo) { done(provs) },
	}
	if tc.Sampled() {
		// Async: the requester may resolve from a broadcast HAVE while the
		// provider search is still running.
		l.span = d.tracer().Start(tc, "dht.lookup", d.self.ID.String(), d.now()).MarkAsync()
		l.tc = l.span.Ctx()
	}
	l.addCandidates(d.rt.Closest(l.target, d.cfg.K))
	l.step()
}

// Provide announces the local node as a provider for key: it locates the k
// closest servers and sends them ADD_PROVIDER records. done (optional) fires
// when the announcement finishes.
func (d *DHT) Provide(key Key, done func()) {
	d.FindClosest(key.AsNodeID(), func(closest []PeerInfo) {
		for _, p := range closest {
			if !p.Server || !d.dial(p) {
				continue
			}
			_ = d.net.Send(d.self.ID, p.ID, addProviderReq{Key: key, Provider: d.self})
		}
		if done != nil {
			done()
		}
	})
}

// Bootstrap seeds the routing table with the given peers and performs a
// self-lookup, populating nearby buckets.
func (d *DHT) Bootstrap(peers []PeerInfo, done func()) {
	for _, p := range peers {
		d.rt.Add(p)
		d.dial(p)
	}
	d.FindClosest(d.self.ID, func([]PeerInfo) {
		if done != nil {
			done()
		}
	})
}

// Refresh performs the periodic routing-table refresh: a self-lookup plus a
// lookup for a random target.
func (d *DHT) Refresh(random simnet.NodeID) {
	d.FindClosest(d.self.ID, func([]PeerInfo) {})
	d.FindClosest(random, func([]PeerInfo) {})
}

// Stats reports lookup/RPC counters.
func (d *DHT) Stats() (lookups, rpcs, timeouts uint64) {
	return d.lookupsStarted, d.rpcsSent, d.rpcsTimedOut
}
