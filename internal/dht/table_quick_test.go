package dht

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bitswapmon/internal/simnet"
)

// TestQuickBucketInvariant: no bucket ever exceeds k, and Size matches the
// number of Contains-able peers, under arbitrary Add/Remove sequences.
func TestQuickBucketInvariant(t *testing.T) {
	f := func(seed int64, ops []bool) bool {
		rng := rand.New(rand.NewSource(seed))
		self := simnet.RandomNodeID(rng)
		rt := NewRoutingTable(self, 4)
		var present []simnet.NodeID
		for _, add := range ops {
			if add || len(present) == 0 {
				id := simnet.RandomNodeID(rng)
				if rt.Add(PeerInfo{ID: id, Server: true}) {
					present = append(present, id)
				}
			} else {
				idx := rng.Intn(len(present))
				rt.Remove(present[idx])
				present = append(present[:idx], present[idx+1:]...)
			}
		}
		if rt.Size() != len(present) {
			return false
		}
		for cpl := 0; cpl <= 256; cpl++ {
			if len(rt.Bucket(cpl)) > 4 {
				return false
			}
		}
		for _, id := range present {
			if !rt.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickClosestSorted: Closest matches a brute-force reference — sort the
// whole table by XOR distance to the target and take the first n. This pins
// both the result set and its order against the bounded-insertion fast path
// (uint64 distance prefixes with full-compare tie-breaks).
func TestQuickClosestSorted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		self := simnet.RandomNodeID(rng)
		rt := NewRoutingTable(self, 20)
		for i := 0; i < int(n); i++ {
			rt.Add(PeerInfo{ID: simnet.RandomNodeID(rng), Server: true})
		}
		target := simnet.RandomNodeID(rng)
		closest := rt.Closest(target, 10)
		want := rt.All()
		SortByDistance(want, target)
		if len(want) > 10 {
			want = want[:10]
		}
		if len(closest) != len(want) {
			return false
		}
		for i := range want {
			if closest[i].ID != want[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickProviderStoreNeverReturnsExpired: Get never returns a record
// older than the TTL.
func TestQuickProviderStore(t *testing.T) {
	f := func(seed int64, adds uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewProviderStore(0)
		key := Key(simnet.RandomNodeID(rng))
		for i := 0; i < int(adds); i++ {
			s.Add(key, PeerInfo{ID: simnet.RandomNodeID(rng)}, t0)
		}
		within := s.Get(key, t0.Add(DefaultProviderTTL-1))
		after := s.Get(key, t0.Add(DefaultProviderTTL+1))
		return len(within) == int(adds) && len(after) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
