package dht

import (
	"time"

	"bitswapmon/internal/otrace"
	"bitswapmon/internal/simnet"
)

// CrawlResult summarises one DHT crawl.
type CrawlResult struct {
	// Seen contains every peer proposed by any answering node. It includes
	// stale routing-table entries for nodes that are offline, which is why
	// crawler-based size estimates over-count (Sec. V-C).
	Seen map[simnet.NodeID]PeerInfo
	// Responded contains the servers that answered at least one RPC.
	Responded map[simnet.NodeID]bool
	// Started and Finished bound the crawl in virtual time.
	Started, Finished time.Time
}

// Crawl enumerates the DHT server core the way the prior-work crawler does:
// starting from bootstrap peers, it queries every discovered server with
// FIND_NODE targets that enumerate the server's k-buckets (one target per
// common-prefix-length up to buckets), following referrals until no new
// servers appear.
//
// DHT clients never appear in k-buckets and are invisible to this procedure;
// offline servers may still be proposed by others and are counted in Seen.
// The crawl runs on d's identity (typically a client-mode DHT on a dedicated
// crawler node) and reports through done.
func Crawl(d *DHT, bootstrap []PeerInfo, buckets int, done func(CrawlResult)) {
	if buckets <= 0 {
		buckets = 16
	}
	res := CrawlResult{
		Seen:      make(map[simnet.NodeID]PeerInfo),
		Responded: make(map[simnet.NodeID]bool),
		Started:   d.net.Now(),
	}
	queried := make(map[simnet.NodeID]bool)
	inflight := 0
	finished := false

	var visit func(p PeerInfo)
	finish := func() {
		if finished {
			return
		}
		finished = true
		res.Finished = d.net.Now()
		done(res)
	}
	maybeFinish := func() {
		if inflight == 0 {
			finish()
		}
	}
	visit = func(p PeerInfo) {
		if p.ID == d.self.ID || queried[p.ID] || !p.Server {
			return
		}
		queried[p.ID] = true
		// Enumerate p's buckets: flipping bit cpl of p's ID yields a target
		// whose common prefix with p has length exactly cpl.
		for cpl := 0; cpl < buckets; cpl++ {
			target := p.ID
			target[cpl/8] ^= 0x80 >> (cpl % 8)
			inflight++
			d.sendFindNode(otrace.Ctx{}, p, target, func(resp findNodeResp, ok bool) {
				inflight--
				if ok {
					res.Responded[p.ID] = true
					for _, next := range resp.Closer {
						if _, seen := res.Seen[next.ID]; !seen {
							res.Seen[next.ID] = next
						}
						visit(next)
					}
				}
				maybeFinish()
			})
		}
	}
	for _, p := range bootstrap {
		res.Seen[p.ID] = p
		visit(p)
	}
	maybeFinish()
}
