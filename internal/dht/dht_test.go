package dht

import (
	"fmt"
	"testing"
	"time"

	"bitswapmon/internal/cid"
	"bitswapmon/internal/otrace"
	"bitswapmon/internal/simnet"
)

var t0 = time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)

// harness wires a DHT into a simnet node.
type harness struct{ dht *DHT }

func (h *harness) HandleMessage(from simnet.NodeID, msg any) {
	h.dht.HandleMessage(from, msg)
}
func (h *harness) PeerConnected(simnet.NodeID)    {}
func (h *harness) PeerDisconnected(simnet.NodeID) {}

type testNet struct {
	net     *simnet.Network
	servers []*DHT
	clients []*DHT
}

// buildNet creates servers+clients, all bootstrapped against servers[0].
func buildNet(t *testing.T, nServers, nClients int, seed int64) *testNet {
	t.Helper()
	net := simnet.New(t0, seed, simnet.Fixed(5*time.Millisecond))
	rng := net.NewRand("ids")
	tn := &testNet{net: net}
	mk := func(i int, mode Mode) *DHT {
		id := simnet.RandomNodeID(rng)
		addr := fmt.Sprintf("10.0.%d.%d:4001", i/250, i%250)
		info := PeerInfo{ID: id, Addr: addr, Server: mode == ModeServer}
		d := New(net, info, Config{Mode: mode})
		if err := net.AddNode(id, addr, simnet.RegionUS, 0, &harness{dht: d}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	for i := 0; i < nServers; i++ {
		tn.servers = append(tn.servers, mk(i, ModeServer))
	}
	for i := 0; i < nClients; i++ {
		tn.clients = append(tn.clients, mk(nServers+i, ModeClient))
	}
	boot := []PeerInfo{tn.servers[0].Self()}
	for _, d := range tn.servers[1:] {
		d.Bootstrap(boot, nil)
		net.Run(200 * time.Millisecond)
	}
	for _, d := range tn.clients {
		d.Bootstrap(boot, nil)
		net.Run(200 * time.Millisecond)
	}
	net.Run(5 * time.Second)
	return tn
}

func TestRoutingTableBasics(t *testing.T) {
	self := simnet.DeriveNodeID([]byte("self"))
	rt := NewRoutingTable(self, 2)
	p1 := PeerInfo{ID: simnet.DeriveNodeID([]byte("p1")), Server: true}
	if !rt.Add(p1) {
		t.Error("Add new peer = false")
	}
	if rt.Add(p1) {
		t.Error("Add duplicate = true")
	}
	if rt.Add(PeerInfo{ID: simnet.DeriveNodeID([]byte("c")), Server: false}) {
		t.Error("client entered k-bucket")
	}
	if rt.Add(PeerInfo{ID: self, Server: true}) {
		t.Error("self entered k-bucket")
	}
	if !rt.Contains(p1.ID) || rt.Size() != 1 {
		t.Error("routing table state wrong")
	}
	rt.Remove(p1.ID)
	if rt.Contains(p1.ID) || rt.Size() != 0 {
		t.Error("Remove failed")
	}
}

func TestRoutingTableBucketCapacity(t *testing.T) {
	self := simnet.NodeID{} // all zeros: bucket index = leading zeros of peer ID
	rt := NewRoutingTable(self, 2)
	// Peers with first bit set share bucket 0.
	added := 0
	for i := 0; i < 10; i++ {
		var id simnet.NodeID
		id[0] = 0x80
		id[31] = byte(i + 1)
		if rt.Add(PeerInfo{ID: id, Server: true}) {
			added++
		}
	}
	if added != 2 {
		t.Errorf("bucket accepted %d peers, want k=2", added)
	}
}

func TestClosestOrdering(t *testing.T) {
	self := simnet.NodeID{}
	rt := NewRoutingTable(self, 20)
	var ids []simnet.NodeID
	for i := 1; i <= 8; i++ {
		var id simnet.NodeID
		id[31] = byte(i)
		ids = append(ids, id)
		rt.Add(PeerInfo{ID: id, Server: true})
	}
	var target simnet.NodeID
	target[31] = 6
	closest := rt.Closest(target, 3)
	if len(closest) != 3 || closest[0].ID != ids[5] {
		t.Errorf("closest to 6 = %v", closest)
	}
	// XOR distance from 6: 6^6=0, 6^7=1, 6^4=2, 6^5=3...
	if closest[1].ID != ids[6] || closest[2].ID != ids[3] {
		t.Errorf("XOR ordering wrong: got %v, %v", closest[1].ID, closest[2].ID)
	}
}

func TestProviderStoreExpiry(t *testing.T) {
	s := NewProviderStore(time.Hour)
	key := KeyForCID(cid.Sum(cid.Raw, []byte("data")))
	p := PeerInfo{ID: simnet.DeriveNodeID([]byte("prov"))}
	s.Add(key, p, t0)
	if got := s.Get(key, t0.Add(30*time.Minute)); len(got) != 1 {
		t.Fatalf("Get before expiry = %d", len(got))
	}
	if got := s.Get(key, t0.Add(2*time.Hour)); len(got) != 0 {
		t.Fatalf("Get after expiry = %d", len(got))
	}
	if s.Len() != 0 {
		t.Error("expired key not cleaned up")
	}
}

func TestLookupFindsClosestNodes(t *testing.T) {
	tn := buildNet(t, 40, 0, 1)
	target := simnet.DeriveNodeID([]byte("lookup-target"))

	// Ground truth: sort all server IDs by distance to target.
	all := make([]PeerInfo, 0, len(tn.servers))
	for _, d := range tn.servers {
		all = append(all, d.Self())
	}
	SortByDistance(all, target)

	var got []PeerInfo
	tn.servers[5].FindClosest(target, func(peers []PeerInfo) { got = peers })
	tn.net.Run(30 * time.Second)
	if got == nil {
		t.Fatal("lookup never completed")
	}
	if len(got) == 0 {
		t.Fatal("lookup returned nothing")
	}
	// The closest node overall must be found.
	if got[0].ID != all[0].ID && got[0].ID != all[1].ID {
		t.Errorf("lookup missed the closest nodes: got %s, want %s", got[0].ID, all[0].ID)
	}
}

func TestProvideAndFindProviders(t *testing.T) {
	tn := buildNet(t, 30, 5, 2)
	key := KeyForCID(cid.Sum(cid.Raw, []byte("published data")))

	provider := tn.clients[0]
	published := false
	provider.Provide(key, func() { published = true })
	tn.net.Run(30 * time.Second)
	if !published {
		t.Fatal("Provide never completed")
	}

	var found []PeerInfo
	tn.clients[1].FindProviders(key, 1, func(provs []PeerInfo) { found = provs })
	tn.net.Run(30 * time.Second)
	if len(found) == 0 {
		t.Fatal("providers not found")
	}
	if found[0].ID != provider.Self().ID {
		t.Errorf("wrong provider: got %s want %s", found[0].ID, provider.Self().ID)
	}
}

func TestFindProvidersMissingKey(t *testing.T) {
	tn := buildNet(t, 20, 1, 3)
	key := KeyForCID(cid.Sum(cid.Raw, []byte("never published")))
	done := false
	tn.clients[0].FindProviders(key, 1, func(provs []PeerInfo) {
		done = true
		if len(provs) != 0 {
			t.Errorf("found %d providers for unpublished key", len(provs))
		}
	})
	tn.net.Run(30 * time.Second)
	if !done {
		t.Fatal("lookup never completed")
	}
}

func TestClientsDoNotAnswerRPCs(t *testing.T) {
	tn := buildNet(t, 10, 2, 4)
	client := tn.clients[0]
	// Send a find-node directly to a client: it must not reply, so the RPC
	// times out.
	responded := false
	timedOut := false
	asker := tn.servers[3]
	asker.sendFindNode(otrace.Ctx{}, PeerInfo{ID: client.Self().ID, Addr: client.Self().Addr, Server: true},
		client.Self().ID, func(_ findNodeResp, ok bool) {
			responded = ok
			timedOut = !ok
		})
	tn.net.Run(time.Minute)
	if responded || !timedOut {
		t.Error("client answered a DHT RPC")
	}
}

func TestClientsAbsentFromRoutingTables(t *testing.T) {
	tn := buildNet(t, 20, 10, 5)
	for _, srv := range tn.servers {
		for _, cl := range tn.clients {
			if srv.RoutingTable().Contains(cl.Self().ID) {
				t.Fatalf("client %s found in server %s routing table", cl.Self().ID, srv.Self().ID)
			}
		}
	}
}

func TestCrawlSeesServersNotClients(t *testing.T) {
	tn := buildNet(t, 30, 10, 6)

	// Dedicated crawler node, client mode.
	crawlerID := simnet.DeriveNodeID([]byte("crawler"))
	crawler := New(tn.net, PeerInfo{ID: crawlerID, Addr: "9.9.9.9:4001"}, Config{Mode: ModeClient})
	if err := tn.net.AddNode(crawlerID, "9.9.9.9:4001", simnet.RegionDE, 0, &harness{dht: crawler}); err != nil {
		t.Fatal(err)
	}

	var res CrawlResult
	gotRes := false
	Crawl(crawler, []PeerInfo{tn.servers[0].Self()}, 16, func(r CrawlResult) {
		res = r
		gotRes = true
	})
	tn.net.Run(5 * time.Minute)
	if !gotRes {
		t.Fatal("crawl never completed")
	}
	if len(res.Responded) < len(tn.servers)*8/10 {
		t.Errorf("crawl responded=%d, want most of %d servers", len(res.Responded), len(tn.servers))
	}
	for _, cl := range tn.clients {
		if _, ok := res.Seen[cl.Self().ID]; ok {
			t.Errorf("crawl saw client %s", cl.Self().ID)
		}
	}
}

func TestCrawlCountsOfflineServers(t *testing.T) {
	tn := buildNet(t, 25, 0, 7)
	// Take a server offline after its entries have spread.
	victim := tn.servers[10]
	if err := tn.net.SetOnline(victim.Self().ID, false); err != nil {
		t.Fatal(err)
	}

	crawlerID := simnet.DeriveNodeID([]byte("crawler2"))
	crawler := New(tn.net, PeerInfo{ID: crawlerID, Addr: "9.9.9.8:4001"}, Config{Mode: ModeClient})
	if err := tn.net.AddNode(crawlerID, "9.9.9.8:4001", simnet.RegionDE, 0, &harness{dht: crawler}); err != nil {
		t.Fatal(err)
	}
	var res CrawlResult
	Crawl(crawler, []PeerInfo{tn.servers[0].Self()}, 16, func(r CrawlResult) { res = r })
	tn.net.Run(10 * time.Minute)
	if res.Seen == nil {
		t.Fatal("crawl never completed")
	}
	if _, ok := res.Seen[victim.Self().ID]; !ok {
		t.Error("offline server not proposed by peers (stale entries should persist)")
	}
	if res.Responded[victim.Self().ID] {
		t.Error("offline server responded")
	}
}

func TestKeyForCIDDeterministic(t *testing.T) {
	c := cid.Sum(cid.Raw, []byte("x"))
	if KeyForCID(c) != KeyForCID(c) {
		t.Error("KeyForCID not deterministic")
	}
	if KeyForCID(c) == KeyForCID(cid.Sum(cid.Raw, []byte("y"))) {
		t.Error("distinct CIDs share a key")
	}
}

func TestModeString(t *testing.T) {
	if ModeServer.String() != "server" || ModeClient.String() != "client" || Mode(0).String() != "unknown" {
		t.Error("mode strings wrong")
	}
}
