package bitswapmon_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md, experiment index). One expensive measurement
// run is shared across benchmarks; each benchmark then re-executes its
// analysis step per iteration and reports the reproduced quantities as
// benchmark metrics, so `go test -bench=. -benchmem` prints the shapes the
// paper reports.
//
// Absolute counts are scaled (the substrate is a simulator, not the public
// IPFS network); the shapes — who dominates, by what factor, what gets
// rejected — are the reproduction targets. EXPERIMENTS.md records
// paper-vs-measured for each artifact.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"bitswapmon/internal/analysis"
	"bitswapmon/internal/attacks"
	"bitswapmon/internal/cid"
	"bitswapmon/internal/cmdutil"
	"bitswapmon/internal/dht"
	"bitswapmon/internal/engine"
	"bitswapmon/internal/estimate"
	"bitswapmon/internal/experiments"
	"bitswapmon/internal/geoip"
	"bitswapmon/internal/ingest"
	"bitswapmon/internal/monitor"
	"bitswapmon/internal/node"
	"bitswapmon/internal/otrace"
	"bitswapmon/internal/replay"
	"bitswapmon/internal/report"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/trace"
	"bitswapmon/internal/wire"
	"bitswapmon/internal/workload"
)

var (
	weekOnce sync.Once
	weekData *experiments.Data
	weekErr  error
)

// maybeEnableMetrics turns on every subsystem's obs instrumentation when
// BSMON_BENCH_METRICS is set, so cmd/bsbench can measure the same benchmark
// bare and instrumented in separate processes (the enable is process-global
// and one-way). The hot-path benchmarks call it before constructing their
// subjects, since telemetry handles resolve at construction.
func maybeEnableMetrics() {
	if os.Getenv("BSMON_BENCH_METRICS") != "" {
		cmdutil.EnableAllMetrics()
	}
}

// sharedWeek runs the main measurement scenario once per process.
func sharedWeek(b *testing.B) *experiments.Data {
	b.Helper()
	weekOnce.Do(func() {
		weekData, weekErr = experiments.CollectWeek(experiments.SmallScale(), 42)
	})
	if weekErr != nil {
		b.Fatal(weekErr)
	}
	return weekData
}

// BenchmarkFig3PeerIDUniformity regenerates Fig. 3: the QQ comparison of a
// monitor's peer IDs against the uniform distribution.
func BenchmarkFig3PeerIDUniformity(b *testing.B) {
	d := sharedWeek(b)
	var fig analysis.Fig3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = analysis.ComputeFig3(d.World.Monitors[0], 100)
	}
	b.ReportMetric(fig.KS, "KS-dist-to-uniform")
	b.ReportMetric(float64(fig.Peers), "peers")
}

// BenchmarkSecVCNetworkSize regenerates the Sec. V-C panel: coverage and the
// Eq. (1)/(3) size estimates vs crawl and ground truth.
func BenchmarkSecVCNetworkSize(b *testing.B) {
	d := sharedWeek(b)
	var sec analysis.SecVC
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sec = analysis.ComputeSecVC(d.World.Monitors, d.Samples, d.Crawl, d.OnlineAvg, d.World.TotalPopulation())
	}
	b.ReportMetric(sec.Eq1Mean, "eq1-estimate")
	b.ReportMetric(sec.Eq3Mean, "eq3-estimate")
	b.ReportMetric(sec.TrueOnlineAvg, "true-online")
	b.ReportMetric(float64(sec.CrawlSeen), "crawl-seen")
	b.ReportMetric(100*sec.CoverageUnion, "coverage-union-pct")
}

// BenchmarkFig4RequestTypes regenerates Fig. 4: the WANT_BLOCK → WANT_HAVE
// transition over an upgrade wave. This one needs its own scenario.
func BenchmarkFig4RequestTypes(b *testing.B) {
	var rep *experiments.UpgradeReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.RunUpgrade(80, 2, 7, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	early, late := rep.Fig4.Buckets[1], rep.Fig4.Buckets[len(rep.Fig4.Buckets)-2]
	b.ReportMetric(float64(early.WantBlock), "early-want-block")
	b.ReportMetric(float64(early.WantHave), "early-want-have")
	b.ReportMetric(float64(late.WantBlock), "late-want-block")
	b.ReportMetric(float64(late.WantHave), "late-want-have")
}

// runReport streams the entries through one registered report and returns
// its result: the measured path of the per-figure benchmarks below.
func runReport(b *testing.B, name string, opts report.Options, entries []trace.Entry) report.Result {
	b.Helper()
	drv := report.NewDriver(true)
	if err := drv.AddByName([]string{name}, opts); err != nil {
		b.Fatal(err)
	}
	if err := drv.Run(ingest.SliceSource(entries)); err != nil {
		b.Fatal(err)
	}
	results, err := drv.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	return results.Get(name)
}

// BenchmarkTable1Multicodec regenerates Table I: multicodec shares of raw
// requests.
func BenchmarkTable1Multicodec(b *testing.B) {
	d := sharedWeek(b)
	var tab *report.Table1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab = runReport(b, "table1", report.Options{}, d.Unified).(*report.Table1)
	}
	for _, row := range tab.Rows {
		switch row.Codec {
		case "DagProtobuf":
			b.ReportMetric(100*row.Share, "dagpb-share-pct")
		case "Raw":
			b.ReportMetric(100*row.Share, "raw-share-pct")
		case "DagCBOR":
			b.ReportMetric(100*row.Share, "dagcbor-share-pct")
		}
	}
}

// BenchmarkTable2Countries regenerates Table II: request shares by country.
func BenchmarkTable2Countries(b *testing.B) {
	d := sharedWeek(b)
	var tab *report.Table2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab = runReport(b, "table2", report.Options{Geo: d.World.Geo}, d.Unified).(*report.Table2)
	}
	for _, row := range tab.Rows {
		switch row.Country {
		case simnet.RegionUS:
			b.ReportMetric(100*row.Share, "US-share-pct")
		case simnet.RegionNL:
			b.ReportMetric(100*row.Share, "NL-share-pct")
		case simnet.RegionDE:
			b.ReportMetric(100*row.Share, "DE-share-pct")
		}
	}
}

// BenchmarkFig5Popularity regenerates Fig. 5: RRP/URP ECDFs plus the CSN
// power-law rejection.
func BenchmarkFig5Popularity(b *testing.B) {
	d := sharedWeek(b)
	var fig *report.Fig5
	opts := report.Options{
		BootstrapIters: 20,
		Rand:           func() *rand.Rand { return d.World.Net.NewRand("bench-fig5") },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = runReport(b, "fig5", opts, d.Unified).(*report.Fig5)
	}
	b.ReportMetric(100*fig.URPShare1, "urp-share1-pct")
	b.ReportMetric(fig.URPPValue, "urp-pvalue")
	b.ReportMetric(boolMetric(fig.URPRejected), "urp-rejected")
	b.ReportMetric(float64(fig.CIDs), "cids")
}

// BenchmarkFig6GatewayRates regenerates Fig. 6: deduplicated request rates
// by origin group.
func BenchmarkFig6GatewayRates(b *testing.B) {
	d := sharedWeek(b)
	var fig *report.Fig6
	opts := report.Options{
		Slice:       time.Hour,
		GatewayIDs:  d.World.GatewayNodeIDs(),
		MegagateIDs: d.MegagateIDs(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = runReport(b, "fig6", opts, d.Unified).(*report.Fig6)
	}
	gw, mg, ng := fig.Totals()
	b.ReportMetric(gw, "gateway-req-per-s")
	b.ReportMetric(mg, "megagate-req-per-s")
	b.ReportMetric(ng, "non-gateway-req-per-s")
}

// BenchmarkReportDriver measures the unified analysis surface end to end:
// every registered report attached to one Driver, one pass over ~1M
// synthetic entries. The events/sec metric is the throughput of "all
// figures at once" — the bsanalyze and live-experiment hot path.
func BenchmarkReportDriver(b *testing.B) {
	maybeEnableMetrics()
	const entryCount = 1 << 20
	geo := geoip.New()
	addrs := make([]string, 512)
	regions := geo.Countries()
	for i := range addrs {
		addr, err := geo.Allocate(regions[i%len(regions)])
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = addr
	}
	cids := make([]cid.CID, 4096)
	for i := range cids {
		cids[i] = cid.Sum(cid.DagProtobuf, []byte{byte(i), byte(i >> 8), 0xab})
	}
	base := time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	entries := make([]trace.Entry, entryCount)
	for i := range entries {
		var id simnet.NodeID
		id[0], id[1] = byte(i), byte(i>>8)
		entries[i] = trace.Entry{
			// 50 entries per virtual second: a heavy aggregated feed.
			Timestamp: base.Add(time.Duration(i) * 20 * time.Millisecond),
			Monitor:   "us",
			NodeID:    id,
			Addr:      addrs[i%len(addrs)],
			Type:      wire.EntryType(i%3 + 1),
			CID:       cids[(i*i)%len(cids)],
		}
		if i%5 == 0 {
			entries[i].Flags = trace.FlagRebroadcast
		}
	}
	gateways := make(map[simnet.NodeID]bool)
	for i := 0; i < 8; i++ {
		var id simnet.NodeID
		id[0] = byte(i)
		gateways[id] = true
	}
	opts := report.Options{
		Geo:            geo,
		GatewayIDs:     gateways,
		MegagateIDs:    map[simnet.NodeID]bool{},
		BootstrapIters: 5, // keep the fig5/popularity bootstrap off the critical path
		// latency_breakdown refuses to construct without a span recorder;
		// an empty tracer keeps "every registered report" true (its Observe
		// is a no-op, so it costs one virtual call per entry).
		Tracer: otrace.New(otrace.Config{Sample: 1, Seed: 42}),
	}
	names := report.Names()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		drv := report.NewDriver(true)
		if err := drv.AddByName(names, opts); err != nil {
			b.Fatal(err)
		}
		if err := drv.Run(ingest.SliceSource(entries)); err != nil {
			b.Fatal(err)
		}
		if _, err := drv.Finalize(); err != nil {
			b.Fatal(err)
		}
	}
	if wall := time.Since(start); wall > 0 {
		b.ReportMetric(float64(entryCount)*float64(b.N)/wall.Seconds(), "events/sec")
	}
	b.ReportMetric(float64(len(names)), "reports")
}

// BenchmarkSecVIBGatewayProbe regenerates the Sec. VI-B probing experiment:
// gateways identified and node IDs discovered.
func BenchmarkSecVIBGatewayProbe(b *testing.B) {
	d := sharedWeek(b)
	var identified, total, correct int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		identified, total, correct = attacks.CrossReference(d.Probes, d.World.Registry.NodeIDs())
	}
	b.ReportMetric(float64(len(d.Probes)), "gateways-probed")
	b.ReportMetric(float64(identified), "gateways-identified")
	b.ReportMetric(float64(total), "node-ids-found")
	b.ReportMetric(float64(correct), "node-ids-correct")
}

// BenchmarkSecVIAAttacks regenerates the Sec. VI-A attack primitives over
// the shared trace: IDW index construction and TNW profiling.
func BenchmarkSecVIAAttacks(b *testing.B) {
	d := sharedWeek(b)
	var idx *attacks.IDWIndex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx = attacks.BuildIDW(d.Dedup)
	}
	b.StopTimer()
	hot := d.World.Catalog.Items[0]
	b.ReportMetric(float64(idx.CIDCount()), "indexed-cids")
	b.ReportMetric(float64(len(idx.UniqueWanters(hot.Root))), "hot-item-wanters")
}

// --- Ablations (design-space knobs from Sec. IV-C) -------------------------

// runAblation builds a scenario with the given joint connectivity and XOR
// bias, returning the Eq. (1) estimation error against ground truth.
func runAblation(b *testing.B, joint workload.JointConnectivity, xorBias float64, seed int64) (estErr float64) {
	b.Helper()
	w, err := workload.Build(workload.Config{
		Seed:  seed,
		Nodes: 250,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
		Joint:     joint,
		XORBias:   xorBias,
		Operators: []workload.OperatorSpec{},
	})
	if err != nil {
		b.Fatal(err)
	}
	sampler := monitor.NewSampler(w.Net, w.Monitors, time.Hour)
	sampler.Start()
	w.Run(8 * time.Hour)
	sampler.Stop()

	var est, truth float64
	n := 0
	for _, s := range sampler.Samples() {
		if s.Intersection == 0 {
			continue
		}
		e, err := estimate.Pairwise(float64(s.PerMonitor[0]), float64(s.PerMonitor[1]), float64(s.Intersection))
		if err != nil {
			continue
		}
		est += e
		n++
	}
	if n == 0 {
		b.Fatal("no usable samples")
	}
	est /= float64(n)
	truth = float64(w.OnlineCount())
	return (est - truth) / truth
}

// BenchmarkAblationIndependentMonitors measures estimator error under the
// uniform-independent assumption (estimators should be nearly unbiased).
func BenchmarkAblationIndependentMonitors(b *testing.B) {
	var errFrac float64
	for i := 0; i < b.N; i++ {
		errFrac = runAblation(b, workload.IndependentJoint(0.5, 0.5), 0, 100+int64(i))
	}
	b.ReportMetric(100*errFrac, "est-error-pct")
}

// BenchmarkAblationCorrelatedMonitors measures estimator error under the
// paper-calibrated correlated connectivity (underestimation expected).
func BenchmarkAblationCorrelatedMonitors(b *testing.B) {
	var errFrac float64
	for i := 0; i < b.N; i++ {
		errFrac = runAblation(b, workload.DefaultJoint(), 0, 200+int64(i))
	}
	b.ReportMetric(100*errFrac, "est-error-pct")
}

// BenchmarkAblationXORBias measures estimator error when monitor
// connectivity is biased by XOR proximity (Sec. IV-C caveat).
func BenchmarkAblationXORBias(b *testing.B) {
	var errFrac float64
	for i := 0; i < b.N; i++ {
		errFrac = runAblation(b, workload.IndependentJoint(0.6, 0.6), 2.0, 300+int64(i))
	}
	b.ReportMetric(100*errFrac, "est-error-pct")
}

// BenchmarkAblationDedupWindows measures how much of the raw trace the 5s/31s
// windows remove (the paper: re-broadcasts alone are >50% of requests).
func BenchmarkAblationDedupWindows(b *testing.B) {
	d := sharedWeek(b)
	var dedup []trace.Entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unified := trace.Unify(d.World.Monitors[0].Trace(), d.World.Monitors[1].Trace())
		dedup = trace.Deduplicated(unified)
	}
	share := 1 - float64(len(dedup))/float64(len(d.Unified))
	b.ReportMetric(100*share, "removed-pct")
}

// --- Microbenchmarks of the hot paths --------------------------------------

// BenchmarkTraceUnify measures the trace unification pipeline itself.
func BenchmarkTraceUnify(b *testing.B) {
	d := sharedWeek(b)
	t1 := d.World.Monitors[0].Trace()
	t2 := d.World.Monitors[1].Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Unify(t1, t2)
	}
	b.ReportMetric(float64(len(t1)+len(t2)), "entries")
}

// BenchmarkStreamUnify measures the online unifier over the same input as
// BenchmarkTraceUnify: same flags out, but sliding-window state instead of
// a global sort.
func BenchmarkStreamUnify(b *testing.B) {
	d := sharedWeek(b)
	t1 := d.World.Monitors[0].Trace()
	t2 := d.World.Monitors[1].Trace()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		u := ingest.NewStreamUnifier(ingest.SliceSource(t1), ingest.SliceSource(t2))
		for {
			if _, err := u.Read(); err != nil {
				break
			}
			n++
		}
	}
	b.ReportMetric(float64(len(t1)+len(t2)), "entries")
	if n != b.N*(len(t1)+len(t2)) {
		b.Fatalf("stream unifier dropped entries: %d", n)
	}
}

// BenchmarkIngestSegmentStore measures the streaming capture path: entries
// written through a rotating segment store (the bsmon hot path). The
// retained-heap metric demonstrates the tentpole property — resident
// memory stays bounded by one segment's buffers while the on-disk trace
// grows with b.N — unlike the seed's accumulate-in-RAM collection, whose
// footprint grows linearly with simulated hours.
func BenchmarkIngestSegmentStore(b *testing.B) {
	dir := b.TempDir()
	store, err := ingest.OpenSegmentStore(filepath.Join(dir, "bench"), ingest.SegmentOptions{Rotation: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	var id simnet.NodeID
	cids := make([]cid.CID, 512)
	for i := range cids {
		cids[i] = cid.Sum(cid.DagProtobuf, []byte{byte(i), byte(i >> 8)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id[0], id[1] = byte(i), byte(i>>8)
		e := trace.Entry{
			// 10 entries per virtual second: one segment per 36k entries.
			Timestamp: base.Add(time.Duration(i) * 100 * time.Millisecond),
			Monitor:   "us",
			NodeID:    id,
			Addr:      "3.0.0.1:4001",
			Type:      wire.EntryType(i%3 + 1),
			CID:       cids[i%len(cids)],
		}
		if err := store.Write(e); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	tot := store.Totals()
	if tot.Entries != b.N {
		b.Fatalf("store holds %d entries, wrote %d", tot.Entries, b.N)
	}
	b.ReportMetric(float64(len(store.Segments())), "segments")
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "retained-heap-MB")
}

// maybeBenchTracer returns a span recorder when BSMON_BENCH_TRACE is set, so
// cmd/bsbench can measure the replay drive untraced and traced in separate
// processes — the traced-vs-untraced column of BENCH_engine.json.
func maybeBenchTracer() *otrace.Tracer {
	if os.Getenv("BSMON_BENCH_TRACE") == "" {
		return nil
	}
	return otrace.New(otrace.Config{Sample: 0.25, Seed: 42})
}

// BenchmarkReplayDrive measures the trace-driven replay path end to end:
// events streamed from an on-disk segment store through the unifier and
// re-issued into a replay world. The events/sec metric is the replay
// subsystem's throughput from disk to monitor-side observation.
func BenchmarkReplayDrive(b *testing.B) {
	maybeEnableMetrics()
	tracer := maybeBenchTracer()
	dir := filepath.Join(b.TempDir(), "replay-bench.segments")
	store, err := ingest.OpenSegmentStore(dir, ingest.SegmentOptions{})
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	cids := make([]cid.CID, 256)
	for i := range cids {
		cids[i] = cid.Sum(cid.Raw, []byte{byte(i), byte(i >> 8), 0xbe})
	}
	const events = 20000
	for i := 0; i < events; i++ {
		var id simnet.NodeID
		id[0] = byte(i % 64)
		e := trace.Entry{
			// 20 events per virtual second over ~17 virtual minutes.
			Timestamp: base.Add(time.Duration(i) * 50 * time.Millisecond),
			Monitor:   "us",
			NodeID:    id,
			Addr:      "3.0.0.1:4001",
			Type:      wire.EntryType(i%2 + 1),
			CID:       cids[i%len(cids)],
		}
		if err := store.Write(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sess, err := replay.Prepare(replay.Spec{
			Mode:     replay.ModeDirect,
			Inputs:   []string{dir},
			TimeWarp: 60,
			Seed:     int64(i),
			Tracer:   tracer,
		})
		if err != nil {
			b.Fatal(err)
		}
		stats, err := sess.Drive()
		if err != nil {
			b.Fatal(err)
		}
		sess.Close()
		if stats.Events != events {
			b.Fatalf("replayed %d events, wrote %d", stats.Events, events)
		}
		// Start each iteration from empty rings: a saturated ring degrades
		// Record to a drop-counter bump, which would understate the cost.
		tracer.Reset()
	}
	if wall := time.Since(start); wall > 0 {
		b.ReportMetric(float64(events)*float64(b.N)/wall.Seconds(), "events/sec")
	}
}

// BenchmarkCrawl measures one full DHT crawl over the shared world.
func BenchmarkCrawl(b *testing.B) {
	d := sharedWeek(b)
	var res dht.CrawlResult
	for i := 0; i < b.N; i++ {
		id := simnet.RandomNodeID(d.World.Net.NewRand("bench-crawler"))
		nd, err := node.New(d.World.Net, id, "202.0.1.1:4001", simnet.RegionOther, node.Config{Mode: dht.ModeClient})
		if err != nil {
			b.Fatal(err)
		}
		done := false
		dht.Crawl(nd.DHT, d.World.Bootstrap, 16, func(r dht.CrawlResult) {
			res = r
			done = true
		})
		d.World.Run(10 * time.Minute)
		if !done {
			b.Fatal("crawl incomplete")
		}
	}
	b.ReportMetric(float64(len(res.Seen)), "peers-seen")
	b.ReportMetric(float64(len(res.Responded)), "servers-responded")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --- Engine benchmarks -----------------------------------------------------

// ringNode bounces every received message to the next node in a ring,
// keeping a constant number of messages in flight: a pure event-loop
// workload (heap ops, latency sampling, delivery) with trivial handlers.
type ringNode struct {
	net  *simnet.Network
	self simnet.NodeID
	next simnet.NodeID
}

func (r *ringNode) HandleMessage(from simnet.NodeID, msg any) { _ = r.net.Send(r.self, r.next, msg) }
func (r *ringNode) PeerConnected(simnet.NodeID)               {}
func (r *ringNode) PeerDisconnected(simnet.NodeID)            {}

// BenchmarkSimnetEventLoop measures raw serial event-loop throughput:
// ns/op is the cost of one delivered message end to end (schedule, heap
// pop, revalidate, handler, reschedule).
func BenchmarkSimnetEventLoop(b *testing.B) {
	maybeEnableMetrics()
	start := time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	net := simnet.New(start, 1, simnet.Fixed(5*time.Millisecond))
	const n = 128
	nodes := make([]*ringNode, n)
	ids := make([]simnet.NodeID, n)
	for i := range nodes {
		ids[i] = simnet.DeriveNodeID([]byte{byte(i), byte(i >> 8), 0xee})
		nodes[i] = &ringNode{net: net, self: ids[i]}
		if err := net.AddNode(ids[i], "10.0.0.1:4001", simnet.RegionUS, 0, nodes[i]); err != nil {
			b.Fatal(err)
		}
	}
	for i := range nodes {
		nodes[i].next = ids[(i+1)%n]
		if err := net.Connect(ids[i], nodes[i].next); err != nil {
			b.Fatal(err)
		}
	}
	for i := range nodes {
		if err := net.Send(ids[i], nodes[i].next, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	delivered0, _ := net.Stats()
	for {
		delivered, _ := net.Stats()
		if delivered-delivered0 >= uint64(b.N) {
			break
		}
		net.Run(time.Second)
	}
}

// BenchmarkSimnetPeers measures the connection-table snapshot path that
// every bitswap broadcast round hits; the sort is cached between
// connection-table changes.
func BenchmarkSimnetPeers(b *testing.B) {
	start := time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	net := simnet.New(start, 1, nil)
	const n = 600
	hub := simnet.DeriveNodeID([]byte("hub"))
	if err := net.AddNode(hub, "10.0.0.1:4001", simnet.RegionUS, 0, &ringNode{}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := simnet.DeriveNodeID([]byte{byte(i), byte(i >> 8), 0xcd})
		if err := net.AddNode(id, "10.0.0.2:4001", simnet.RegionUS, 0, &ringNode{}); err != nil {
			b.Fatal(err)
		}
		if err := net.Connect(hub, id); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(net.Peers(hub)); got != n {
			b.Fatalf("got %d peers", got)
		}
	}
}

// benchEngineScaling runs the dense scaling scenario; each iteration is 30
// simulated seconds. Delivered messages per wall second is the engine's
// effective throughput; it is reported both under its historical name and
// as events/sec, the spelling bsbench records.
func benchEngineScaling(b *testing.B, nodes int, newEngine func(time.Time, int64) engine.Engine) {
	w, err := workload.Build(experiments.DenseConfig(42, nodes, newEngine))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	w.Run(time.Duration(b.N) * 30 * time.Second)
	wall := time.Since(start)
	delivered, _ := w.Net.Stats()
	if wall > 0 {
		b.ReportMetric(float64(delivered)/wall.Seconds(), "delivered/wallsec")
		b.ReportMetric(float64(delivered)/wall.Seconds(), "events/sec")
	}
}

// BenchmarkEngineScaling compares the serial reference against the sharded
// engine at 1/2/4/8/16/32 shards on a traffic-dense 2000-node population
// (the "large benchmark scenario"). With >= 4 CPUs the 4-shard engine beats
// serial wall-clock; on fewer cores the sub-benchmarks instead bound the
// synchronization overhead. The 100k-node population exercises the dense
// node table and timing wheels at the paper's network scale; it is skipped
// under -short and on low-CPU machines, where it would only measure swap.
func BenchmarkEngineScaling(b *testing.B) {
	b.Logf("NumCPU=%d", runtime.NumCPU())
	b.Run("serial", func(b *testing.B) { benchEngineScaling(b, 2000, nil) })
	for _, shards := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
			benchEngineScaling(b, 2000, engine.ShardedFactory(shards))
		})
	}
	b.Run("sharded-8-100k", func(b *testing.B) {
		if testing.Short() {
			b.Skip("100k-node population skipped in -short mode")
		}
		if runtime.NumCPU() < 8 {
			b.Skipf("100k-node population needs >= 8 CPUs, have %d", runtime.NumCPU())
		}
		benchEngineScaling(b, 100_000, engine.ShardedFactory(8))
	})
}
