// Sweep walkthrough: declare a scenario once, vary it along axes, run the
// whole family of simulations on a worker pool, then compare the grid —
// the workflow behind every "metric X vs. population × churn" panel. The
// demo also interrupts the sweep halfway and resumes it, showing how the
// manifest skips completed runs, and prints the aggregate comparison that
// joins per-run summaries without re-reading any raw trace.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"bitswapmon/internal/analysis"
	"bitswapmon/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	root, err := os.MkdirTemp("", "bitswapmon-sweep")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// One declarative scenario: a small, traffic-dense two-monitor world.
	// Everything left zero takes the workload package's defaults. Reports
	// names an extra registered report (internal/report) to run over each
	// run's unified trace: its metrics land in the per-run summary as
	// "table1:<metric>" and aggregate by name like any built-in metric —
	// a new comparison metric without touching the sweep layer.
	base := sweep.ScenarioSpec{
		Version:          sweep.SpecVersion,
		Name:             "demo",
		Nodes:            40,
		BootstrapServers: 8,
		CatalogItems:     200,
		ActiveFrac:       0.8,
		Monitors: []sweep.MonitorSpec{
			{Name: "us", Region: "US"},
			{Name: "de", Region: "DE"},
		},
		Gateways:            []sweep.OperatorSpec{}, // no gateways: faster demo
		MeanRequestsPerHour: 30,
		Warmup:              sweep.D(10 * time.Minute),
		Window:              sweep.D(time.Hour),
		SampleEvery:         sweep.D(20 * time.Minute),
		Reports:             []string{"table1"},
	}

	// Vary population × churn, two seeds per cell: 3×2×2 = 12 runs.
	sw := sweep.SweepSpec{
		Version: sweep.SpecVersion,
		Name:    "population-x-churn",
		Base:    base,
		Axes: []sweep.Axis{
			{Param: "nodes", Values: []any{30, 60, 90}},
			{Param: "mean_session", Values: []any{"2h", "8h"}},
		},
		Seeds: sweep.SeedPolicy{Base: 42, Replicates: 2},
	}
	runs, err := sweep.Expand(sw)
	if err != nil {
		return err
	}
	fmt.Printf("sweep %q expands to %d runs, e.g. %s\n", sw.Name, len(runs), runs[0].ID)

	// Phase 1: start the campaign, but cancel after a few runs — the
	// moral equivalent of Ctrl-C (or a crash) halfway through.
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	res, _ := sweep.RunSweep(ctx, root, sw, sweep.Options{
		Workers: 4,
		AfterRun: func(string) {
			if done.Add(1) >= 4 {
				cancel()
			}
		},
	})
	cancel()
	fmt.Printf("interrupted after %d/%d runs\n", res.Executed, res.Total)

	// Phase 2: resume. The manifest skips everything already completed.
	res, err = sweep.RunSweep(context.Background(), root, sw, sweep.Options{Workers: 4})
	if err != nil {
		return err
	}
	fmt.Printf("resumed: %d executed, %d skipped (already done)\n\n", res.Executed, res.Skipped)

	// Aggregate: join the per-run summaries into the comparison panel.
	// Only summary.json files are read here — never raw trace segments.
	// Metrics are resolved by name from each summary's metrics map, so the
	// extra report's numbers aggregate exactly like the built-ins.
	recs, err := sweep.LoadSummaries(root)
	if err != nil {
		return err
	}
	table, err := analysis.ComputeSweepTable(recs, "nodes", "mean_session", "peer_overlap")
	if err != nil {
		return err
	}
	fmt.Print(table.Render())
	fmt.Println()
	table, err = analysis.ComputeSweepTable(recs, "nodes", "mean_session", "dedup_entries")
	if err != nil {
		return err
	}
	fmt.Print(table.Render())
	fmt.Println()
	table, err = analysis.ComputeSweepTable(recs, "nodes", "mean_session", "table1:requests")
	if err != nil {
		return err
	}
	fmt.Print(table.Render())
	return nil
}
