// Size estimation: run the paper's Sec. V-C experiment — two passive
// monitors estimate the network size from their overlapping peer sets
// (Eq. 1 and Eq. 3), compared against a DHT crawl and the simulation's
// ground truth.
package main

import (
	"fmt"
	"log"
	"time"

	"bitswapmon/internal/analysis"
	"bitswapmon/internal/dht"
	"bitswapmon/internal/monitor"
	"bitswapmon/internal/node"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("building a 500-node network with two monitors (us, de)...")
	w, err := workload.Build(workload.Config{
		Seed:  7,
		Nodes: 500,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
	})
	if err != nil {
		return err
	}

	sampler := monitor.NewSampler(w.Net, w.Monitors, time.Hour)
	sampler.Start()

	fmt.Println("running 12 hours of virtual time...")
	w.Run(12 * time.Hour)
	sampler.Stop()

	// Crawl the DHT for the comparison baseline.
	crawlerID := simnet.DeriveNodeID([]byte("crawler"))
	crawler, err := node.New(w.Net, crawlerID, "202.0.0.9:4001", simnet.RegionOther, node.Config{Mode: dht.ModeClient})
	if err != nil {
		return err
	}
	var crawlRes dht.CrawlResult
	dht.Crawl(crawler.DHT, w.Bootstrap, 16, func(r dht.CrawlResult) { crawlRes = r })
	w.Run(10 * time.Minute)

	sec := analysis.ComputeSecVC(w.Monitors, sampler.Samples(), crawlRes,
		float64(w.OnlineCount()), w.TotalPopulation())
	fmt.Println()
	fmt.Println(sec.Render())

	fmt.Println("paper shape check:")
	fmt.Printf("  - estimators agree with each other: Eq1=%.0f vs Eq3=%.0f\n", sec.Eq1Mean, sec.Eq3Mean)
	fmt.Printf("  - correlated monitor connectivity makes them underestimate the truth (%.0f online)\n",
		sec.TrueOnlineAvg)
	fmt.Printf("  - the DHT crawl over the window sees more unique peers (%d) than are online at once\n",
		sec.CrawlSeen)
	return nil
}
