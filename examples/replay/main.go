// Replay walkthrough: record a monitored run, replay the recorded trace
// back through the simulator, then scale it up — the loop that turns every
// captured observation into a reusable, amplifiable workload.
//
// The demo does three things:
//
//  1. Record: a small synthetic world runs with two monitors streaming
//     their observations into on-disk segment stores.
//  2. Direct replay: the stores drive a fresh simulation at 1×; the
//     per-monitor request counts must match the recording exactly (the
//     self-validation path).
//  3. Fitted replay: empirical models (popularity, activity, diurnal
//     shape) are fitted to the trace and a 10×-amplified population
//     replays a statistically matched workload.
//
// Finally the three monitor-side summaries print side by side.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bitswapmon/internal/ingest"
	"bitswapmon/internal/replay"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/trace"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "bitswapmon-replay")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// --- 1. Record a run into segment stores -----------------------------
	fmt.Println("recording: 80-node world, two monitors, 2 simulated hours")
	w, err := workload.Build(workload.Config{
		Seed:  7,
		Nodes: 80,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
		Operators:           []workload.OperatorSpec{},
		Catalog:             workload.CatalogConfig{Items: 300},
		MeanRequestsPerHour: 8,
	})
	if err != nil {
		return err
	}
	var inputs []string
	stores := make(map[string]*ingest.SegmentStore)
	for _, m := range w.Monitors {
		path := filepath.Join(dir, m.Name+".segments")
		store, err := ingest.OpenSegmentStore(path, ingest.SegmentOptions{})
		if err != nil {
			return err
		}
		m.SetSink(store)
		stores[m.Name] = store
		inputs = append(inputs, path)
	}
	w.Run(2 * time.Hour)
	recorded := trace.NewSummarizer()
	for name, store := range stores {
		if err := store.Close(); err != nil {
			return fmt.Errorf("seal %s: %w", name, err)
		}
		it, err := store.Query(time.Time{}, time.Time{}, nil)
		if err != nil {
			return err
		}
		if _, err := ingest.Copy(recorded, it); err != nil {
			return err
		}
		it.Close()
	}

	// --- 2. Direct replay at 1× ------------------------------------------
	fmt.Println("direct replay: re-issuing every recorded entry (time-warped 8×)")
	direct, err := replaySummary(replay.Spec{
		Mode:     replay.ModeDirect,
		Inputs:   inputs,
		TimeWarp: 8, // warping compresses wall/virtual time, never counts
		Seed:     1,
	})
	if err != nil {
		return err
	}

	// --- 3. Fitted replay at 10× -----------------------------------------
	fmt.Println("fitted replay: empirical models, 10× population")
	fitted, err := replaySummary(replay.Spec{
		Mode:     replay.ModeFitted,
		Inputs:   inputs,
		Amplify:  10,
		TimeWarp: 8,
		Seed:     2,
	})
	if err != nil {
		return err
	}

	// --- Diff the three summaries ----------------------------------------
	rec := recorded.Summary()
	fmt.Printf("\n%-22s %12s %12s %12s\n", "", "recorded", "replayed 1x", "fitted 10x")
	row := func(label string, a, b, c int) {
		fmt.Printf("%-22s %12d %12d %12d\n", label, a, b, c)
	}
	row("entries", rec.Entries, direct.Entries, fitted.Entries)
	row("requests", rec.Requests, direct.Requests, fitted.Requests)
	row("unique peers", rec.UniquePeers, direct.UniquePeers, fitted.UniquePeers)
	row("unique CIDs", rec.UniqueCIDs, direct.UniqueCIDs, fitted.UniqueCIDs)
	row("monitor us entries", rec.PerMonitor["us"], direct.PerMonitor["us"], fitted.PerMonitor["us"])
	row("monitor de entries", rec.PerMonitor["de"], direct.PerMonitor["de"], fitted.PerMonitor["de"])
	if rec.Requests != direct.Requests {
		return fmt.Errorf("direct replay drifted: %d requests vs %d recorded", direct.Requests, rec.Requests)
	}
	fmt.Println("\ndirect replay matches the recording; the fitted run scales it ~10x.")
	return nil
}

// replaySummary prepares, drives and summarises one replay session.
func replaySummary(spec replay.Spec) (trace.Summary, error) {
	sess, err := replay.Prepare(spec)
	if err != nil {
		return trace.Summary{}, err
	}
	defer sess.Close()
	if _, err := sess.Drive(); err != nil {
		return trace.Summary{}, err
	}
	z := trace.NewSummarizer()
	for _, m := range sess.World.Monitors {
		for _, e := range m.Trace() {
			z.Write(e)
		}
	}
	return z.Summary(), nil
}
