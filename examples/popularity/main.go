// Popularity: reproduce the paper's Sec. V-E analysis — compute RRP and URP
// content-popularity scores from a monitored trace, plot their ECDFs as
// ASCII, and run the Clauset–Shalizi–Newman test that rejects the power-law
// hypothesis.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"bitswapmon/internal/ingest"
	"bitswapmon/internal/popularity"
	"bitswapmon/internal/report"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/trace"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("building a 400-node network and collecting 12h of traces...")
	w, err := workload.Build(workload.Config{
		Seed:  5,
		Nodes: 400,
		Catalog: workload.CatalogConfig{
			Items: 6000,
		},
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
		MeanRequestsPerHour: 3,
	})
	if err != nil {
		return err
	}
	w.Run(12 * time.Hour)

	unified := trace.Unify(w.Monitors[0].Trace(), w.Monitors[1].Trace())
	dedup := trace.Deduplicated(unified)
	fmt.Printf("trace: %d entries raw, %d deduplicated\n\n", len(unified), len(dedup))

	// One streaming pass through the registered fig5 report: the same code
	// path bsanalyze and the live experiment sinks use.
	drv := report.NewDriver(true)
	if err := drv.AddByName([]string{"fig5"}, report.Options{
		BootstrapIters: 60,
		Rand:           func() *rand.Rand { return w.Net.NewRand("fig5") },
	}); err != nil {
		return err
	}
	if err := drv.Run(ingest.SliceSource(unified)); err != nil {
		return err
	}
	results, err := drv.Finalize()
	if err != nil {
		return err
	}
	fig5 := results.Get("fig5").(*report.Fig5)
	fmt.Println(fig5.Render())

	fmt.Println("URP ECDF (paper Fig. 5b):")
	plotECDF(fig5.URPECDF)
	fmt.Println("\nRRP ECDF (paper Fig. 5a):")
	plotECDF(fig5.RRPECDF)

	fmt.Println("\npaper shape checks:")
	fmt.Printf("  - over %.0f%% of CIDs requested by exactly one peer (paper: >80%%)\n", 100*fig5.URPShare1)
	fmt.Printf("  - power-law hypothesis rejected? RRP=%v (p=%.2f), URP=%v (p=%.2f) (paper: rejected, p<0.1)\n",
		fig5.RRPRejected, fig5.RRPPValue, fig5.URPRejected, fig5.URPPValue)
	return nil
}

// plotECDF renders a small ASCII ECDF.
func plotECDF(pts []popularity.ECDFPoint) {
	if len(pts) == 0 {
		fmt.Println("  (empty)")
		return
	}
	const width = 50
	step := len(pts) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		bar := strings.Repeat("#", int(p.Prob*width))
		fmt.Printf("  %8.0f | %-*s %.3f\n", p.Value, width, bar, p.Prob)
	}
	last := pts[len(pts)-1]
	fmt.Printf("  %8.0f | %-*s %.3f\n", last.Value, width, strings.Repeat("#", width), last.Prob)
}
