// Quickstart: build a small IPFS-like network, attach one passive monitor,
// publish and fetch content, and print what the monitor observed — the core
// of the paper's methodology in ~80 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"bitswapmon/internal/dht"
	"bitswapmon/internal/ingest"
	"bitswapmon/internal/monitor"
	"bitswapmon/internal/node"
	"bitswapmon/internal/report"
	"bitswapmon/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	net := simnet.New(start, 1, nil)
	rng := net.NewRand("quickstart")

	// A handful of regular nodes.
	var nodes []*node.Node
	for i := 0; i < 8; i++ {
		id := simnet.RandomNodeID(rng)
		nd, err := node.New(net, id, fmt.Sprintf("10.0.0.%d:4001", i+1), simnet.RegionDE, node.Config{})
		if err != nil {
			return err
		}
		nodes = append(nodes, nd)
	}

	// One passive monitor with unlimited connection capacity.
	mon, err := monitor.New(net, "demo", "78.0.0.1:4001", simnet.RegionDE)
	if err != nil {
		return err
	}

	// Bootstrap everyone against node 0 and connect the overlay densely;
	// every node also ends up connected to the monitor (as in the paper,
	// where monitors reach >50% of the network).
	boot := []dht.PeerInfo{nodes[0].Info()}
	mon.Start(boot)
	for _, nd := range nodes {
		nd.Start(boot)
		for _, other := range nodes {
			if other.ID != nd.ID {
				_ = net.Connect(nd.ID, other.ID)
			}
		}
		_ = net.Connect(nd.ID, mon.ID())
	}
	net.Run(2 * time.Second)

	// Node 0 publishes a file; node 5 fetches it.
	root, err := nodes[0].Publish([]byte("hello from the interplanetary filesystem"))
	if err != nil {
		return err
	}
	net.Run(5 * time.Second)

	nodes[5].FetchFile(root, func(data []byte, ok bool) {
		fmt.Printf("node %s fetched %q (ok=%v)\n", nodes[5].ID, data, ok)
	})
	net.Run(30 * time.Second)

	// The monitor saw the request — without participating in it.
	fmt.Printf("\nmonitor %q observed %d want entries:\n", mon.Name, len(mon.Trace()))
	for _, e := range mon.Trace() {
		fmt.Printf("  %s  node=%s  addr=%s  %s  cid=%s\n",
			e.Timestamp.Format("15:04:05.000"), e.NodeID, e.Addr, e.Type, e.CID)
	}

	// Analyse it with the streaming report registry: any combination of
	// named reports runs in one pass over the trace — the same code path
	// bsanalyze uses over segment stores and live experiments attach as
	// monitor sinks.
	drv := report.NewDriver(true)
	if err := drv.AddByName([]string{"summary", "table1"}, report.Options{}); err != nil {
		return err
	}
	if err := drv.Run(ingest.SliceSource(mon.Trace())); err != nil {
		return err
	}
	results, err := drv.Finalize()
	if err != nil {
		return err
	}
	for _, nr := range results {
		fmt.Printf("\n==== %s ====\n%s", nr.Name, nr.Result.Render())
	}
	return nil
}
