// Tracing walkthrough: run a small monitored world with the causal flight
// recorder on, export the trace for Perfetto, verify the span forest nests
// correctly, and render the span-driven latency breakdown — the loop that
// turns "p99 is X" into "p99 is X because of the DHT rounds".
//
// The demo does four things:
//
//  1. Trace: a 60-node world runs for two simulated hours with an
//     otrace.Tracer attached; half of the requests are head-sampled
//     (deterministically by seed, so a re-run traces the same ones) and
//     carry spans through gateway, DHT, Bitswap and every delivery hop.
//  2. Inspect: the recorded spans are grouped into per-request trees and
//     checked for causal nesting (async hops follow FollowsFrom rules).
//  3. Export: the trace is written as Chrome trace-event JSON — load it at
//     https://ui.perfetto.dev — plus a JSONL sidecar for scripts.
//  4. Break down: the latency_breakdown report consumes the same spans and
//     prints per-stage virtual-time distributions.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bitswapmon/internal/otrace"
	"bitswapmon/internal/report"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "bitswapmon-tracing")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// --- 1. Run a small world with the flight recorder on ----------------
	fmt.Println("tracing: 60-node world + 2 gateways, 2 simulated hours, 50% head-sampling")
	tracer := otrace.New(otrace.Config{Sample: 0.5, Seed: 11})
	w, err := workload.Build(workload.Config{
		Seed:  11,
		Nodes: 60,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
		},
		Operators: []workload.OperatorSpec{
			// An HTTP gateway fleet, so the trace also shows the cache-hit
			// short-circuit vs full-fetch split on gateway.fetch spans.
			{Name: "gw", Nodes: 2, RequestsPerHour: 40, HotBias: 3, Functional: true, CacheTTL: 30 * time.Minute},
		},
		Catalog:             workload.CatalogConfig{Items: 200},
		MeanRequestsPerHour: 6,
		Tracer:              tracer,
	})
	if err != nil {
		return err
	}
	w.Run(2 * time.Hour)

	// --- 2. Group spans into request trees and check causal nesting ------
	spans := tracer.Spans()
	trees := otrace.BuildTrees(spans)
	for _, tree := range trees {
		if err := tree.CheckNesting(); err != nil {
			return fmt.Errorf("span forest is causally inconsistent: %w", err)
		}
	}
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
	}
	fmt.Printf("recorded %d spans across %d sampled requests (dropped %d)\n",
		len(spans), len(trees), tracer.Dropped())
	for _, name := range []string{"request", "gateway.fetch", "dht.lookup", "bitswap.get", "send.want_have", "send.block"} {
		if n := byName[name]; n > 0 {
			fmt.Printf("  %-16s %5d\n", name, n)
		}
	}

	// --- 3. Export for Perfetto ------------------------------------------
	out := filepath.Join(dir, "trace.json")
	if err := tracer.WriteFiles(out); err != nil {
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes) — open at https://ui.perfetto.dev\n", out, fi.Size())
	fmt.Printf("wrote %s.jsonl — one Span per line for jq/scripts\n", out)

	// --- 4. Per-stage latency breakdown from the same spans ---------------
	rep, err := report.New("latency_breakdown", report.Options{Tracer: tracer})
	if err != nil {
		return err
	}
	res, err := rep.Finalize()
	if err != nil {
		return err
	}
	fmt.Println("\n" + res.Render())
	return nil
}
