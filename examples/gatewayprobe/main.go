// Gateway probing: reproduce the paper's Sec. VI-B proof of concept — use a
// unique random block and the monitoring infrastructure to uncover the
// normally hidden IPFS node IDs behind public HTTP gateways, then launch a
// TNW (Tracking Node Wants) attack against the identified nodes.
package main

import (
	"fmt"
	"log"
	"time"

	"bitswapmon/internal/attacks"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/trace"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("building network with a gateway fleet (incl. a 13-node operator)...")
	w, err := workload.Build(workload.Config{
		Seed:  11,
		Nodes: 300,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("public gateway list has %d entries across %d operators\n",
		len(w.Registry.All()), len(w.Registry.ByOperator()))

	fmt.Println("running 2 hours of background traffic...")
	w.Run(2 * time.Hour)

	// Probe every listed gateway with a fresh random CID each.
	prober := attacks.NewGatewayProber(w.Net, w.Monitors, w.Net.NewRand("probe"))
	var results []attacks.ProbeResult
	prober.ProbeAll(w.Registry, func(r []attacks.ProbeResult) { results = r })
	w.Run(time.Duration(len(w.Registry.All())+2) * prober.WaitFor)

	truth := w.Registry.NodeIDs()
	identified, total, correct := attacks.CrossReference(results, truth)
	fmt.Printf("\nprobing complete: identified %d/%d gateways, %d node IDs discovered (%d confirmed)\n",
		identified, len(results), total, correct)
	for _, r := range results {
		status := "http-ok"
		if !r.HTTPFunctional {
			status = "http-broken"
		}
		fmt.Printf("  %-28s %-11s discovered IDs: %d\n", r.GatewayName, status, len(r.DiscoveredIDs))
	}

	// TNW: surveil the first discovered gateway node.
	var target simnet.NodeID
	for _, r := range results {
		if len(r.DiscoveredIDs) > 0 {
			target = r.DiscoveredIDs[0]
			break
		}
	}
	fmt.Printf("\nTNW attack on discovered gateway node %s:\n", target)
	unified := trace.Deduplicated(trace.Unify(w.Monitors[0].Trace(), w.Monitors[1].Trace()))
	profile := attacks.ProfileNode(unified, target)
	fmt.Printf("  observed %d requests for %d distinct CIDs between %s and %s\n",
		profile.Requests, profile.UniqueCIDs,
		profile.First.Format(time.RFC3339), profile.Last.Format(time.RFC3339))

	wants := attacks.TrackNodeWants(unified, target)
	limit := 10
	if len(wants) < limit {
		limit = len(wants)
	}
	for _, e := range wants[:limit] {
		fmt.Printf("    %s  %s  %s\n", e.Timestamp.Format("15:04:05"), e.Type, e.CID)
	}
	if len(wants) > limit {
		fmt.Printf("    ... and %d more\n", len(wants)-limit)
	}
	return nil
}
