// Streaming ingestion demo: run a monitored scenario whose monitors stream
// observations straight to disk through the ingest pipeline (segment store
// + one-pass statistics), then analyse the collected trace without ever
// holding it in memory — the shape of the paper's production deployment,
// where monitors collected hundreds of millions of entries per day.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bitswapmon/internal/ingest"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/trace"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "bitswapmon-streaming")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// A small two-monitor world, as in the paper's us/de deployment.
	w, err := workload.Build(workload.Config{
		Seed:  7,
		Nodes: 120,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
	})
	if err != nil {
		return err
	}

	// Capture path: each monitor streams into its own segment store, with
	// a one-pass aggregator teed alongside. No monitor retains entries.
	stores := make(map[string]*ingest.SegmentStore)
	stats := make(map[string]*ingest.OnlineStats)
	for _, m := range w.Monitors {
		store, err := ingest.OpenSegmentStore(filepath.Join(dir, m.Name), ingest.SegmentOptions{
			Rotation: 30 * time.Minute,
		})
		if err != nil {
			return err
		}
		st := ingest.NewOnlineStats(ingest.StatsOptions{Bucket: 30 * time.Minute, TopK: 5})
		m.SetSink(ingest.Tee(store, st))
		stores[m.Name] = store
		stats[m.Name] = st
	}

	fmt.Println("running 120 nodes for 3h of virtual time, streaming to segments...")
	w.Run(3 * time.Hour)

	// The stores now hold the whole trace, partitioned by time, with
	// footers describing each segment — no entry is resident in RAM.
	for _, m := range w.Monitors {
		store := stores[m.Name]
		if err := store.Close(); err != nil {
			return err
		}
		if err := m.SinkErr(); err != nil {
			return err
		}
		if got := m.Trace(); got != nil {
			return fmt.Errorf("monitor %s retained %d entries in RAM", m.Name, len(got))
		}
		tot := store.Totals()
		fmt.Printf("\nmonitor %s: %d entries in %d segments, ~%.0f distinct peers\n",
			m.Name, tot.Entries, len(store.Segments()), stats[m.Name].DistinctPeers())
		for _, seg := range store.Segments() {
			fmt.Printf("  segment %06d: %5d entries  %s .. %s\n",
				seg.Seq, seg.Footer.Entries,
				seg.Footer.First.Format("15:04:05"), seg.Footer.Last.Format("15:04:05"))
		}
	}

	// Analysis path: unify both monitors' streams online (Sec. IV-B dedup
	// windows, bounded state) and summarise in the same pass.
	var sources []ingest.EntrySource
	for _, m := range w.Monitors {
		it, err := stores[m.Name].Query(time.Time{}, time.Time{}, nil)
		if err != nil {
			return err
		}
		sources = append(sources, it)
	}
	z := trace.NewSummarizer()
	if _, err := ingest.Copy(z, ingest.NewStreamUnifier(sources...)); err != nil {
		return err
	}
	sum := z.Summary()
	fmt.Printf("\nunified (streaming): %d entries, %d peers, %d CIDs\n",
		sum.Entries, sum.UniquePeers, sum.UniqueCIDs)
	fmt.Printf("flagged online: %d rebroadcasts, %d inter-monitor dups\n",
		sum.Rebroadcasts, sum.InterMonDups)

	// The popularity picture, straight from the capture-time sketch.
	fmt.Println("\nmost requested CIDs at monitor us (space-saving estimates):")
	for i, tc := range stats["us"].TopCIDs(5) {
		fmt.Printf("  %d. %s  ~%d requests\n", i+1, tc.CID, tc.Count)
	}

	// A windowed query touches only the overlapping segments' footers and
	// payloads: here, the second virtual hour.
	first := stores["us"].Totals().First
	it, err := stores["us"].Query(first.Add(time.Hour), first.Add(2*time.Hour), nil)
	if err != nil {
		return err
	}
	window, err := ingest.Drain(it)
	if err != nil {
		return err
	}
	fmt.Printf("\nsecond-hour window at us: %d entries\n", len(window))
	return nil
}
