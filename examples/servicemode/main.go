// Service-mode demo: the library pieces behind `bsmon -serve`, wired by
// hand. A monitored scenario streams into per-monitor segment stores and a
// rolling-window report driver; a background Maintainer compacts small
// sealed segments into generation-2 segments and expires raw data behind a
// retention horizon while the rolled-up window results stay durable. This
// is the continuous-monitoring shape of the paper's deployment: monitors
// that run for months, with bounded disk, live answers and no resident
// trace.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bitswapmon/internal/ingest"
	"bitswapmon/internal/report"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "bitswapmon-servicemode")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	w, err := workload.Build(workload.Config{
		Seed:  11,
		Nodes: 120,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
	})
	if err != nil {
		return err
	}

	// Rolling windows: the traffic report evaluated over 2h tumbling
	// windows of the unified live stream. Every closed window is appended
	// to a JSONL log — the durable rollup that outlives raw-segment
	// retention.
	windowLog, err := os.Create(filepath.Join(dir, "windows.jsonl"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(windowLog)
	wd, err := report.NewWindowedDriver(report.WindowOptions{
		Width:   2 * time.Hour,
		Keep:    48,
		Reports: []string{"traffic"},
		Opts: report.Options{
			Geo:        w.Geo,
			GatewayIDs: w.GatewayNodeIDs(),
		},
		Dedup:   true,
		OnClose: func(res report.WindowResult) error { return enc.Encode(res) },
	})
	if err != nil {
		return err
	}

	// Wiring: each monitor tees its raw stream into its own segment store
	// (fine 30m rotation, so compaction has something to do) and into one
	// shared UnifySink that orders and flags the merged stream before the
	// windowed driver consumes it.
	uni := ingest.NewUnifySink(wd)
	var stores []*ingest.SegmentStore
	var maintainers []*ingest.Maintainer
	for _, m := range w.Monitors {
		store, err := ingest.OpenSegmentStore(
			filepath.Join(dir, m.Name+".segments"),
			ingest.SegmentOptions{Rotation: 30 * time.Minute})
		if err != nil {
			return err
		}
		stores = append(stores, store)
		// One Maintainer per store: merge runs of >= 3 small segments,
		// expire raw segments entirely older than 12h behind the newest
		// data, refresh the footer index.
		maintainers = append(maintainers, ingest.NewMaintainer(store, ingest.MaintainOptions{
			Interval:   200 * time.Millisecond,
			Compaction: ingest.CompactionPolicy{MinRun: 3},
			Retention:  ingest.RetentionPolicy{MaxAge: 12 * time.Hour},
		}))
		m.SetSink(ingest.Tee(store, uni))
	}

	// Two simulated days, advanced in chunks the way the daemon's service
	// loop does (a real deployment checks for shutdown between chunks).
	fmt.Println("running 2 days of virtual time...")
	for i := 0; i < 48; i++ {
		w.Run(time.Hour)
	}

	// Shutdown, in daemon order: seal the stores, flush the unifier's final
	// batch, finalize open windows, then one last maintenance pass.
	for i, m := range w.Monitors {
		if err := stores[i].Close(); err != nil {
			return err
		}
		if err := m.SinkErr(); err != nil {
			return err
		}
	}
	if err := uni.Flush(); err != nil {
		return err
	}
	windows, err := wd.Close()
	if err != nil {
		return err
	}
	for _, mt := range maintainers {
		if err := mt.Close(); err != nil {
			return err
		}
	}

	for i, m := range w.Monitors {
		segs := stores[i].Segments()
		first, last := segs[0].Footer.First, segs[len(segs)-1].Footer.Last
		fmt.Printf("monitor %s: %d entries in %d segments, retained [%s, %s] (%s of raw data)\n",
			m.Name, stores[i].Totals().Entries, len(segs),
			first.Format("01-02 15:04"), last.Format("01-02 15:04"),
			last.Sub(first).Round(time.Hour))
		st := maintainers[i].Stats()
		fmt.Printf("  maintenance: %d compactions absorbed %d segments, %d expired by retention\n",
			st.Compactions, st.CompactedSegments, st.Expired)
	}
	fmt.Printf("\nrolling 2h traffic windows (%d closed, durable in windows.jsonl):\n", len(windows))
	for _, res := range windows[len(windows)-6:] {
		m := res.Metrics["traffic"]
		fmt.Printf("  [%s, %s) %5d entries, %4.1f%% rebroadcast\n",
			res.Start.Format("01-02 15:04"), res.End.Format("15:04"),
			res.Entries, 100*m["rebroad_share"])
	}
	fmt.Println("\nnote how retention kept ~12h of raw segments while every window")
	fmt.Println("since the start survives as rolled-up report state.")
	return windowLog.Close()
}
