// Package nowalltime forbids wall-clock time sources and the global
// math/rand stream in simulation-facing packages.
//
// The reproduction's correctness anchor is byte-identical output across runs
// and across the serial/sharded engines. Any read of the host clock
// (time.Now, time.Since, timers that fire on wall time) or any draw from the
// process-global math/rand source breaks that: the result depends on when
// and where the binary ran, not on the scenario seed. Inside the packages
// that run under the simulation (engine, simnet, bitswap, dht, workload,
// replay, report, monitor) the only legal time source is the engine Clock
// and the only legal randomness is a seeded stream (rand.New(rand.NewSource(
// seed)) or engine.Rand.NewRand).
//
// Deliberate wall-clock uses — self-timing instrumentation that feeds
// metrics, never simulation results — are annotated //bsvet:walltime.
package nowalltime

import (
	"go/ast"
	"go/types"

	"bitswapmon/tools/analyzers/internal/bsvetutil"
	"golang.org/x/tools/go/analysis"
)

// Analyzer is the nowalltime pass.
var Analyzer = &analysis.Analyzer{
	Name: "nowalltime",
	Doc:  "forbid wall-clock time and global math/rand in simulation-facing packages (suppress with //bsvet:walltime)",
	URL:  "bitswapmon/tools/analyzers/nowalltime",
	Run:  run,
}

// bannedTime is the wall-clock surface of package time. Pure conversions
// (time.Unix, time.Duration arithmetic, time.Date) are fine: they do not
// read the host clock.
var bannedTime = map[string]string{
	"Now":       "read of the host clock",
	"Since":     "read of the host clock",
	"Until":     "read of the host clock",
	"NewTimer":  "wall-clock timer",
	"NewTicker": "wall-clock timer",
	"After":     "wall-clock timer",
	"Tick":      "wall-clock timer",
	"AfterFunc": "wall-clock timer",
	"Sleep":     "wall-clock sleep",
}

// allowedRand lists the package-level functions of math/rand (and /v2) that
// construct explicitly seeded generators rather than drawing from the global
// source.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !bsvetutil.SimFacing(pass.Pkg.Path()) {
		return nil, nil
	}
	suppressed := bsvetutil.Suppressor(pass, "walltime")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := bsvetutil.PkgName(pass, sel.X)
			if pn == nil {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				// time.Time, rand.Rand, constants: all fine.
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				why, bad := bannedTime[name]
				if bad && !suppressed(sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"time.%s is a %s; simulation-facing code must use the engine Clock (//bsvet:walltime to allow)",
						name, why)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[name] && !suppressed(sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the process-global source; use a seeded stream (rand.New(rand.NewSource(seed)) or engine Rand) (//bsvet:walltime to allow)",
						name)
				}
			}
			return true
		})
	}
	return nil, nil
}
