package nowalltime_test

import (
	"testing"

	"bitswapmon/tools/analyzers/internal/atest"
	"bitswapmon/tools/analyzers/nowalltime"
)

func TestNoWallTime(t *testing.T) {
	atest.Run(t, "testdata", nowalltime.Analyzer, "engine", "cmdtool")
}
