// Positive, negative and directive-suppressed cases for nowalltime inside a
// simulation-facing package (bare path "engine" matches the sim set).
package engine

import (
	"math/rand"
	"time"
)

func bad() {
	t0 := time.Now()             // want `time\.Now is a read of the host clock`
	_ = time.Since(t0)           // want `time\.Since is a read of the host clock`
	_ = time.Until(t0)           // want `time\.Until is a read of the host clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep is a wall-clock sleep`
	_ = time.After(time.Second)  // want `time\.After is a wall-clock timer`
	_ = time.NewTimer(1)         // want `time\.NewTimer is a wall-clock timer`
	f := time.Now                // want `time\.Now is a read of the host clock`
	_ = f
}

func badRand() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the process-global source`
	_ = rand.Int63()                   // want `rand\.Int63 draws from the process-global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
}

func good() {
	rng := rand.New(rand.NewSource(42))
	_ = rng.Intn(10)
	_ = time.Unix(0, 0)
	_ = 5 * time.Millisecond
	var t time.Time
	_ = t.Add(time.Second)
}

func annotated() {
	t0 := time.Now() //bsvet:walltime self-timing instrumentation
	//bsvet:walltime directive on the preceding line also counts
	_ = time.Since(t0)
}
