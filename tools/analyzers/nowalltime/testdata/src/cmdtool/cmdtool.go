// A non-simulation-facing package: wall-clock use is legal here, so the
// analyzer must stay silent.
package cmdtool

import (
	"math/rand"
	"time"
)

func Wall() time.Duration {
	t0 := time.Now()
	_ = rand.Intn(10)
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}
