// Positive, negative and directive-suppressed cases for obshandle.
package hot

import "obs"

type driver struct {
	reg *obs.Registry
	vec *obs.CounterVec
	c   *obs.Counter
}

// Observe is the per-entry hot path of the report contract: any handle
// lookup here pays a registry mutex or label-map probe per event.
func (d *driver) Observe(e int) {
	c := d.reg.Counter("x", "events") // want `obs\.Registry\.Counter looked up in a hot context`
	c.Inc()
	d.vec.With("a").Inc() // want `obs\.CounterVec\.With looked up in a hot context`
}

func (d *driver) drain(keys []string) {
	for _, k := range keys {
		d.vec.With(k).Inc() // want `obs\.CounterVec\.With looked up in a hot context`
	}
}

func (d *driver) nestedLit(keys []string) {
	for _, k := range keys {
		fn := func() {
			d.vec.With(k).Inc() // want `obs\.CounterVec\.With looked up in a hot context`
		}
		fn()
	}
}

// Construction-time resolution is the sanctioned pattern.
func newDriver(reg *obs.Registry) *driver {
	d := &driver{reg: reg}
	d.c = reg.Counter("x", "events")
	d.vec = reg.CounterVec("y", "events by label", "l")
	return d
}

// Pre-resolved handles in hot paths are fine.
func (d *driver) fastPath(keys []string) {
	for range keys {
		d.c.Inc()
	}
}

func coldLoop(d *driver, keys []string) {
	for _, k := range keys {
		d.vec.With(k).Inc() //bsvet:obshandle window close-out, runs once per window
	}
}
