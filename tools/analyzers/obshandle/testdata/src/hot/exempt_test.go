// Test files are exempt: hammer tests register metrics in loops on purpose.
package hot

import "obs"

func hammer(reg *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		reg.Counter("x", "events").Inc()
	}
}
