// Stub of the obs metrics surface; the package name "obs" is what marks
// Registry/Vec lookups for the analyzer.
package obs

type (
	Registry     struct{}
	Counter      struct{}
	Gauge        struct{}
	Histogram    struct{}
	CounterVec   struct{}
	GaugeVec     struct{}
	HistogramVec struct{}
)

func (r *Registry) Counter(name, help string) *Counter { return nil }
func (r *Registry) Gauge(name, help string) *Gauge     { return nil }
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return nil
}
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return nil
}
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return nil
}
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return nil
}

func (v *CounterVec) With(labels ...string) *Counter     { return nil }
func (v *GaugeVec) With(labels ...string) *Gauge         { return nil }
func (v *HistogramVec) With(labels ...string) *Histogram { return nil }

func (c *Counter) Inc()              {}
func (g *Gauge) Set(v float64)       {}
func (h *Histogram) Observe(float64) {}
