package obshandle_test

import (
	"testing"

	"bitswapmon/tools/analyzers/internal/atest"
	"bitswapmon/tools/analyzers/obshandle"
)

func TestObsHandle(t *testing.T) {
	atest.Run(t, "testdata", obshandle.Analyzer, "hot")
}
