// Package obshandle enforces the once-resolved metric-handle pattern on hot
// paths.
//
// The obs layer keeps instrumentation overhead inside the ±5% budget by
// resolving every metric handle exactly once, at construction: a package
// calls Registry.Counter/…/HistogramVec in its EnableMetrics and stores the
// result (and any Vec.With projections) in an atomic.Pointer-guarded struct,
// so the hot path pays one nil check, never a registry mutex or a label-map
// probe. Looking a handle up per event — a Registry method or Vec.With call
// inside an Observe method or a loop body — silently reintroduces a hash-
// and-lock per event and blows the budget without failing any test.
//
// The analyzer flags Registry registration methods (Counter, Gauge,
// Histogram, CounterVec, GaugeVec, HistogramVec) and Vec handle projection
// (With) on obs types when the call sits inside a method named Observe or
// inside any for/range body. Cold-path loops (window close-out, exposition)
// are annotated //bsvet:obshandle. Test files are exempt.
package obshandle

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bitswapmon/tools/analyzers/internal/bsvetutil"
	"golang.org/x/tools/go/analysis"
)

// Analyzer is the obshandle pass.
var Analyzer = &analysis.Analyzer{
	Name: "obshandle",
	Doc:  "flag per-event obs metric-handle lookups in Observe methods and loop bodies (suppress with //bsvet:obshandle)",
	URL:  "bitswapmon/tools/analyzers/obshandle",
	Run:  run,
}

// lookupMethods maps obs receiver type names to the methods that perform a
// registry or label-map lookup.
var lookupMethods = map[string]map[string]bool{
	"Registry": {
		"Counter": true, "Gauge": true, "Histogram": true,
		"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
	},
	"CounterVec":   {"With": true},
	"GaugeVec":     {"With": true},
	"HistogramVec": {"With": true},
}

func run(pass *analysis.Pass) (any, error) {
	suppressed := bsvetutil.Suppressor(pass, "obshandle")
	for _, f := range pass.Files {
		if len(f.Decls) == 0 {
			continue
		}
		if bsvetutil.IsTestFile(pass, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walk(pass, fd.Body, fd.Name.Name == "Observe", suppressed)
		}
	}
	return nil, nil
}

// walk traverses a subtree; hot marks per-event context (an Observe method,
// or any enclosing loop — including loops outside a function literal, since
// a literal built per iteration runs per iteration).
func walk(pass *analysis.Pass, root ast.Node, hot bool, suppressed func(token.Pos) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || n == root {
			return true
		}
		switch x := n.(type) {
		case *ast.ForStmt:
			walk(pass, x, true, suppressed)
			return false
		case *ast.RangeStmt:
			walk(pass, x, true, suppressed)
			return false
		case *ast.CallExpr:
			if !hot {
				return true
			}
			recv, method := lookupCall(pass, x)
			if recv != "" && !suppressed(x.Pos()) {
				pass.Reportf(x.Pos(),
					"obs.%s.%s looked up in a hot context; resolve the handle once at construction into an atomic.Pointer field (//bsvet:obshandle to allow)",
					recv, method)
			}
		}
		return true
	})
}

// lookupCall reports whether call is a registry/label-map lookup on an obs
// type, returning the receiver type and method names.
func lookupCall(pass *analysis.Pass, call *ast.CallExpr) (recv, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.TypesInfo.Selections[sel] == nil {
		return "", ""
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return "", ""
	}
	if path := pkg.Path(); path != "obs" && !strings.HasSuffix(path, "internal/obs") {
		return "", ""
	}
	methods := lookupMethods[named.Obj().Name()]
	if methods == nil || !methods[sel.Sel.Name] {
		return "", ""
	}
	return named.Obj().Name(), sel.Sel.Name
}
