// Stub node aggregate; its types are node-owned state.
package node

import (
	"bitswap"
	"engine"
)

type Node struct {
	ID      engine.NodeID
	Bitswap *bitswap.Engine
	Counter int
	Wants   map[string]int
}
