// Stub per-node protocol state: the package name "bitswap" marks its types
// as node-owned.
package bitswap

type Engine struct{ Wants map[string]bool }

func (e *Engine) Request(c string)          {}
func (e *Engine) SetLegacyWantBlock(v bool) {}
