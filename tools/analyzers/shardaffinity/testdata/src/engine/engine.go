// Stub of the real engine surface: a type whose method set carries AfterOn
// is treated as engine-shaped by the analyzer.
package engine

import "time"

type NodeID uint64

type Engine struct{}

func (e *Engine) After(d time.Duration, fn func())              {}
func (e *Engine) At(t time.Time, fn func())                     {}
func (e *Engine) AfterOn(id NodeID, d time.Duration, fn func()) {}
func (e *Engine) Post(id NodeID, fn func())                     {}
