// Positive, negative and directive-suppressed cases for shardaffinity in a
// simulation-facing package.
package workload

import (
	"time"

	"engine"
	"node"
)

type W struct {
	Net   *engine.Engine
	Nodes []*node.Node
	Total int
}

func (w *W) controlBad(nd *node.Node) {
	w.Net.After(time.Second, func() {
		nd.Bitswap.Request("c") // want `node-owned state \(nd\.Bitswap\) touched from a control-affine After callback`
		nd.Counter++            // want `node-owned state \(nd\) touched from a control-affine After callback`
		nd.Wants["c"] = 1       // want `node-owned state \(nd\) touched from a control-affine After callback`
	})
	w.Net.At(time.Time{}, func() {
		nd.Bitswap.SetLegacyWantBlock(false) // want `node-owned state \(nd\.Bitswap\) touched from a control-affine At callback`
	})
}

// The sanctioned marshalling pattern: a control loop posts node work with
// the owning node's affinity. Nothing to flag.
func (w *W) controlGood(nd *node.Node) {
	w.Net.After(time.Second, func() {
		w.Total++ // global orchestration state is fine on the control shard
		w.Net.Post(nd.ID, func() {
			nd.Bitswap.SetLegacyWantBlock(false)
		})
	})
}

func (w *W) affinityBad(a, b *node.Node) {
	w.Net.AfterOn(a.ID, time.Second, func() {
		b.Bitswap.Request("c") // want `AfterOn callback with affinity a touches node state through b\.Bitswap`
	})
	w.Net.Post(a.ID, func() {
		b.Counter++ // want `Post callback with affinity a touches node state through b`
	})
}

func (w *W) affinityGood(a *node.Node) {
	w.Net.AfterOn(a.ID, time.Second, func() {
		a.Bitswap.Request("c")
		a.Counter++
	})
	// A node resolved inside the callback runs on the owning shard by
	// construction; the analyzer cannot tie it to the affinity argument and
	// stays silent rather than guess.
	w.Net.Post(a.ID, func() {
		nd := w.Nodes[0]
		nd.Counter++
	})
}

func (w *W) annotated(nd *node.Node) {
	w.Net.After(time.Second, func() {
		nd.Bitswap.Request("c") //bsvet:shardaffinity node pinned to the control shard
	})
}
