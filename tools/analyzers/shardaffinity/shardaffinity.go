// Package shardaffinity enforces the engine's node-affinity contract on
// scheduled callbacks.
//
// Under engine.Sharded, per-node protocol state (bitswap want maps, DHT
// routing tables, node block stores) is safe without locks only because
// every function that touches a node's state runs on the shard owning that
// node. The engine documents the rule: schedule such work with
// AfterOn(id, ...) or Post(id, ...); the plain After/At run with control
// affinity and must stick to global orchestration. A callback that violates
// this compiles and passes every serial test, then races (or silently
// diverges) under the sharded engine — exactly the class of bug equivalence
// tests catch late and reviewers miss.
//
// The analyzer inspects every function literal passed to After/At/AfterOn/
// Post on an engine-shaped receiver (any type whose method set has AfterOn)
// and flags:
//
//   - After/At callbacks that call methods on, or write fields of, values
//     whose type lives in a per-node protocol package (bitswap, dht, node) —
//     node-owned state touched with control affinity;
//   - AfterOn/Post callbacks that touch node-owned state reached through a
//     different captured variable than the affinity argument — state of node
//     B mutated on node A's shard.
//
// Touching node state through a nested AfterOn/Post literal is the
// sanctioned marshalling pattern and is not flagged (the nested callback is
// checked on its own). Deliberate exceptions (e.g. nodes pinned to the
// control shard) are annotated //bsvet:shardaffinity.
package shardaffinity

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bitswapmon/tools/analyzers/internal/bsvetutil"
	"golang.org/x/tools/go/analysis"
)

// Analyzer is the shardaffinity pass.
var Analyzer = &analysis.Analyzer{
	Name: "shardaffinity",
	Doc:  "flag node-owned state touched from callbacks without the owning node's affinity (suppress with //bsvet:shardaffinity)",
	URL:  "bitswapmon/tools/analyzers/shardaffinity",
	Run:  run,
}

// nodeStatePkgs are the per-node protocol packages: a value of a type
// declared in one of these is node-owned state.
var nodeStatePkgs = []string{"bitswap", "dht", "node"}

func run(pass *analysis.Pass) (any, error) {
	if !bsvetutil.SimFacing(pass.Pkg.Path()) {
		return nil, nil
	}
	suppressed := bsvetutil.Suppressor(pass, "shardaffinity")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, affinity, lit := schedulingCall(pass, call)
			if lit == nil {
				return true
			}
			switch kind {
			case "After", "At":
				checkControl(pass, kind, lit, suppressed)
			case "AfterOn", "Post":
				checkAffine(pass, kind, affinity, lit, suppressed)
			}
			return true
		})
	}
	return nil, nil
}

// schedulingCall recognizes engine scheduling calls whose final argument is
// a function literal. It returns the method name, the affinity argument
// (nil for control-affine After/At), and the literal.
func schedulingCall(pass *analysis.Pass, call *ast.CallExpr) (kind string, affinity ast.Expr, lit *ast.FuncLit) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil, nil
	}
	name := sel.Sel.Name
	var wantArgs int
	switch name {
	case "After", "At", "Post":
		wantArgs = 2
	case "AfterOn":
		wantArgs = 3
	default:
		return "", nil, nil
	}
	if len(call.Args) != wantArgs {
		return "", nil, nil
	}
	l, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return "", nil, nil
	}
	// The receiver must be engine-shaped: its method set carries AfterOn.
	// This keeps the analyzer off unrelated After/Post methods.
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return "", nil, nil
	}
	if obj, _, _ := types.LookupFieldOrMethod(recv, true, pass.Pkg, "AfterOn"); obj == nil {
		return "", nil, nil
	}
	if name == "AfterOn" || name == "Post" {
		affinity = call.Args[0]
	}
	return name, affinity, l
}

// checkControl flags node-owned state touched inside a control-affine
// (After/At) callback. Nested AfterOn/Post literals are the sanctioned
// marshalling pattern and are skipped; they are verified independently.
func checkControl(pass *analysis.Pass, kind string, lit *ast.FuncLit, suppressed func(token.Pos) bool) {
	walkCallback(pass, lit, func(pos token.Pos, expr string) {
		if !suppressed(pos) {
			pass.Reportf(pos,
				"node-owned state (%s) touched from a control-affine %s callback; schedule it with AfterOn/Post on the owning node (//bsvet:shardaffinity to allow)",
				expr, kind)
		}
	}, nil)
}

// checkAffine flags node-owned state reached through a captured variable
// other than the affinity argument's root inside an AfterOn/Post callback.
func checkAffine(pass *analysis.Pass, kind string, affinity ast.Expr, lit *ast.FuncLit, suppressed func(token.Pos) bool) {
	owner := rootIdent(affinity)
	if owner == nil {
		// Affinity derived through an index or call: no sound way to match
		// roots, so stay silent rather than guess.
		return
	}
	ownerObj := identObj(pass, owner)
	walkCallback(pass, lit, nil, func(pos token.Pos, root *ast.Ident, expr string) {
		if root == nil {
			return
		}
		obj := identObj(pass, root)
		if obj == nil || obj == ownerObj {
			return
		}
		// Locals declared inside the literal resolve their node at run time
		// on the owning shard; only captures can smuggle in foreign state.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return
		}
		if !suppressed(pos) {
			pass.Reportf(pos,
				"%s callback with affinity %s touches node state through %s; post it with that node's ID instead (//bsvet:shardaffinity to allow)",
				kind, owner.Name, expr)
		}
	})
}

// walkCallback walks a scheduling callback body and invokes onTouch for
// every method call on, or field write through, node-owned state.
// Exactly one of control/affine is non-nil and selects the reporting shape.
func walkCallback(pass *analysis.Pass, lit *ast.FuncLit, control func(token.Pos, string), affine func(token.Pos, *ast.Ident, string)) {
	report := func(pos token.Pos, e ast.Expr) {
		label := types.ExprString(e)
		if control != nil {
			control(pos, label)
		} else {
			affine(pos, rootIdent(e), label)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// Skip nested scheduling literals: their body is checked as its
			// own callback with its own affinity.
			if _, _, nested := schedulingCall(pass, x); nested != nil {
				// Still look at the affinity/duration arguments normally.
				for _, arg := range x.Args[:len(x.Args)-1] {
					checkExprReads(pass, arg, report)
				}
				return false
			}
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pass.TypesInfo.Selections[sel] == nil {
				return true // package-qualified or conversion, not a method
			}
			if t := pass.TypesInfo.TypeOf(sel.X); isNodeState(t) {
				report(sel.Pos(), sel.X)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkWriteTarget(pass, lhs, report)
			}
		case *ast.IncDecStmt:
			checkWriteTarget(pass, x.X, report)
		}
		return true
	})
}

// checkWriteTarget reports a write whose target is reached through a
// node-owned value: nd.Field = v, nd.Wants[k] = v, nd.Counter++.
func checkWriteTarget(pass *analysis.Pass, lhs ast.Expr, report func(token.Pos, ast.Expr)) {
	for {
		switch x := lhs.(type) {
		case *ast.SelectorExpr:
			if t := pass.TypesInfo.TypeOf(x.X); isNodeState(t) {
				report(x.Pos(), x.X)
				return
			}
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return
		}
	}
}

// checkExprReads applies the same node-state detection to a plain
// expression (used for nested scheduling call arguments).
func checkExprReads(pass *analysis.Pass, e ast.Expr, report func(token.Pos, ast.Expr)) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || pass.TypesInfo.Selections[sel] == nil {
			return true
		}
		if t := pass.TypesInfo.TypeOf(sel.X); isNodeState(t) {
			report(sel.Pos(), sel.X)
		}
		return true
	})
}

// isNodeState reports whether t is (a pointer to) a named type declared in
// one of the per-node protocol packages.
func isNodeState(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	for _, name := range nodeStatePkgs {
		if path == name || strings.HasSuffix(path, "internal/"+name) {
			return true
		}
	}
	return false
}

// rootIdent unwraps selector/index/paren chains to the base identifier, or
// nil when the base is not an identifier (calls, literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// identObj resolves an identifier to its object.
func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
