package shardaffinity_test

import (
	"testing"

	"bitswapmon/tools/analyzers/internal/atest"
	"bitswapmon/tools/analyzers/shardaffinity"
)

func TestShardAffinity(t *testing.T) {
	atest.Run(t, "testdata", shardaffinity.Analyzer, "workload")
}
