// Package analyzers is the bsvet static-analysis suite: go/analysis passes
// that mechanically enforce the simulator's cross-cutting contracts, the
// ones the compiler cannot see and equivalence tests only catch after the
// fact.
//
// The suite ships four analyzers:
//
//   - nowalltime — simulation-facing packages (engine, simnet, bitswap, dht,
//     workload, replay, report, monitor) must not read the host clock
//     (time.Now/Since/timers) or draw from the global math/rand source; only
//     the engine Clock and seeded RNG streams keep output byte-identical
//     across runs and engines. Suppress with //bsvet:walltime.
//
//   - maporder — iteration over a map must not emit into ordered sinks
//     (string builders, io.Writers, CSV/JSON encoders, trace sinks) from the
//     loop body; Go randomizes map order per run, so such loops are the
//     classic source of non-reproducible reports. Suppress with
//     //bsvet:maporder.
//
//   - shardaffinity — node-owned protocol state (types from bitswap, dht,
//     node) may only be touched from callbacks posted with the owning
//     node's affinity (AfterOn/Post); control-affine After/At callbacks and
//     wrong-node affinities are flagged. Suppress with //bsvet:shardaffinity.
//
//   - obshandle — obs metric handles must be resolved once at construction
//     into atomic.Pointer-guarded structs; Registry registrations and
//     Vec.With projections inside Observe methods or loop bodies are
//     flagged. Suppress with //bsvet:obshandle.
//
// # Running
//
// cmd/bsvet packages the suite as a vet tool:
//
//	cd tools/analyzers && go build -o "$HOME/go/bin/bsvet" ./cmd/bsvet
//	go vet -vettool="$HOME/go/bin/bsvet" ./...
//
// A directive comment suppresses a finding when placed on the flagged line
// or the line above, and names exactly one analyzer:
//
//	t0 := time.Now() //bsvet:walltime self-timing for metrics, not sim state
//
// The module vendors the golang.org/x/tools analysis framework (the same
// snapshot the Go distribution uses for cmd/vet) so the main module stays
// dependency-free and builds need no network.
package analyzers
