// Package atest is a small analysistest replacement: it loads testdata
// packages from source, runs one analyzer over them, and checks the
// reported diagnostics against // want "regexp" comments.
//
// golang.org/x/tools/go/analysis/analysistest depends on go/packages and a
// module cache; this module vendors only the analysis framework snapshot
// shipped inside the Go distribution, which does not include it. The subset
// implemented here is what the bsvet suites need:
//
//   - testdata layout testdata/src/<pkg>/*.go, packages importable by bare
//     path from sibling testdata packages; stdlib imports resolve through
//     the source importer (no network, no module cache);
//   - // want "re" ["re" ...] comments anchored to their line, matched as
//     unanchored regexps against diagnostics on that line;
//   - unexpected or missing diagnostics fail the test with positions.
//
// Facts and analyzer dependencies (Requires) are not supported; the bsvet
// analyzers use neither.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes each named testdata package with a and checks // want
// expectations in that package's files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	if len(a.Requires) > 0 || len(a.FactTypes) > 0 {
		t.Fatalf("atest: analyzer %s uses Requires/Facts, which atest does not support", a.Name)
	}
	l := &loader{
		dir:  testdata,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*loaded),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	for _, path := range pkgs {
		lp, err := l.load(path)
		if err != nil {
			t.Fatalf("atest: load %s: %v", path, err)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:          a,
			Fset:              l.fset,
			Files:             lp.files,
			Pkg:               lp.pkg,
			TypesInfo:         lp.info,
			TypesSizes:        types.SizesFor("gc", "amd64"),
			ResultOf:          map[*analysis.Analyzer]any{},
			Report:            func(d analysis.Diagnostic) { diags = append(diags, d) },
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("atest: %s on %s: %v", a.Name, path, err)
		}
		check(t, l.fset, lp.files, diags)
	}
}

// want is one expected-diagnostic regexp at a position.
type want struct {
	re   *regexp.Regexp
	used bool
}

// check matches diagnostics against // want comments, both keyed by
// (file base name, line).
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*want)
	key := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				k := key(c.Pos())
				for _, expr := range splitQuoted(t, text[len("want "):], key(c.Pos())) {
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", k, expr, err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		k := key(d.Pos)
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", k, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

// splitQuoted parses a sequence of Go-quoted strings: "a" "b c" `d`.
func splitQuoted(t *testing.T, s, where string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want comment near %q", where, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want string %q", where, s)
		}
		raw := s[:end+2]
		val, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", where, raw, err)
		}
		out = append(out, val)
		s = s[end+2:]
	}
}

// loader loads testdata packages (and, through the source importer, their
// stdlib dependencies) into one FileSet.
type loader struct {
	dir  string
	fset *token.FileSet
	pkgs map[string]*loaded
	std  types.Importer
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// load parses and type-checks testdata/src/<path>.
func (l *loader) load(path string) (*loaded, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.dir, "src", filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*testdataImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[path] = lp
	return lp, nil
}

// testdataImporter resolves imports against testdata first, then stdlib.
type testdataImporter loader

func (i *testdataImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(i)
	if st, err := os.Stat(filepath.Join(l.dir, "src", filepath.FromSlash(path))); err == nil && st.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}
