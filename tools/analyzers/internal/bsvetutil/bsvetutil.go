// Package bsvetutil holds the small amount of machinery shared by the bsvet
// analyzers: the simulation-facing package set and //bsvet: suppression
// directives.
//
// # Directives
//
// A finding is suppressed by a comment of the form
//
//	//bsvet:<name>            — e.g. //bsvet:walltime
//	//bsvet:<name> <reason>   — optional free-text justification
//
// placed either on the flagged line itself (trailing comment) or on the line
// immediately above it. Each analyzer only honours its own directive name, so
// an exemption never silences more than it names.
package bsvetutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// simFacing lists the packages whose code runs inside (or renders output of)
// the deterministic simulation: only engine-provided virtual time and seeded
// per-node RNG streams are legal there, and anything they emit must be
// byte-identical across runs and across the serial/sharded engines.
var simFacing = []string{
	"engine",
	"simnet",
	"bitswap",
	"dht",
	"workload",
	"replay",
	"report",
	"monitor",
}

// SimFacing reports whether the package at path is simulation-facing. It
// matches both the real module layout (bitswapmon/internal/engine) and bare
// testdata package paths (engine), and treats a package's external test
// package (path_test) like the package itself.
func SimFacing(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, name := range simFacing {
		if path == name || strings.HasSuffix(path, "internal/"+name) {
			return true
		}
	}
	return false
}

// Suppressor returns a predicate reporting whether a diagnostic at pos is
// silenced by a //bsvet:<name> directive in the pass's files.
func Suppressor(pass *analysis.Pass, name string) func(pos token.Pos) bool {
	want := "bsvet:" + name
	// lines[file] holds the set of line numbers carrying the directive.
	lines := make(map[*token.File]map[int]bool)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				if !strings.HasPrefix(text, want) {
					continue
				}
				rest := text[len(want):]
				// Require an exact directive name: //bsvet:walltime must not
				// also satisfy //bsvet:wall.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' && !strings.HasPrefix(rest, "*/") {
					continue
				}
				set := lines[tf]
				if set == nil {
					set = make(map[int]bool)
					lines[tf] = set
				}
				set[tf.Line(c.Pos())] = true
			}
		}
	}
	return func(pos token.Pos) bool {
		tf := pass.Fset.File(pos)
		set := lines[tf]
		if set == nil {
			return false
		}
		line := tf.Line(pos)
		return set[line] || set[line-1]
	}
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	tf := pass.Fset.File(pos)
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}

// PkgName resolves an expression to the *types.PkgName it names, or nil if
// the expression is not a package qualifier (e.g. the x in x.Sel where x is a
// variable).
func PkgName(pass *analysis.Pass, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := pass.TypesInfo.Uses[id].(*types.PkgName)
	return pn
}
