// Positive, negative and directive-suppressed cases for maporder.
package a

import (
	"bytes"
	"encoding/json"
	"fmt"
	"maps"
	"sort"
	"strings"
)

type sink struct{}

func (sink) Record(string) {}

func bad(m map[string]int, sb *strings.Builder, buf *bytes.Buffer, s sink) {
	for k := range m {
		sb.WriteString(k) // want `WriteString inside range over a map`
	}
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over a map`
	}
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside range over a map`
	}
	enc := json.NewEncoder(buf)
	for k := range m {
		_ = enc.Encode(k) // want `Encode inside range over a map`
	}
	for k := range m {
		s.Record(k) // want `Record inside range over a map`
	}
}

func badIterator(m map[string]int, sb *strings.Builder) {
	for k := range maps.Keys(m) {
		sb.WriteString(k) // want `WriteString inside range over a map`
	}
}

func good(m map[string]int, sb *strings.Builder) {
	// The canonical fix: sorted keys, emission outside the map range.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString(k)
	}
	// A builder local to the iteration cannot leak map order.
	parts := make([]string, 0, len(m))
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		parts = append(parts, b.String())
	}
	// Order-independent accumulation.
	total := 0
	for _, v := range m {
		total += v
	}
	_ = total
}

func annotated(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) //bsvet:maporder debug dump, order irrelevant
	}
}
