package maporder_test

import (
	"testing"

	"bitswapmon/tools/analyzers/internal/atest"
	"bitswapmon/tools/analyzers/maporder"
)

func TestMapOrder(t *testing.T) {
	atest.Run(t, "testdata", maporder.Analyzer, "a")
}
