// Package maporder flags iteration over a map that writes directly into an
// ordered output sink — a string builder, an io.Writer, a CSV/JSON encoder,
// a trace sink — inside the loop body.
//
// Go randomizes map iteration order per run, so any bytes emitted from
// inside a map range land in a different order on every execution: the
// classic source of non-byte-identical reports, CSVs and traces. The fix is
// always the same shape — collect the keys, sort them, then range over the
// sorted slice and emit. Emission into per-iteration locals (a builder
// declared inside the loop) is fine and not flagged, as is pure accumulation
// (sums, counters, filling another map), which is order-independent.
//
// Deliberately order-free emission (e.g. debug dumps) is annotated
// //bsvet:maporder.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"bitswapmon/tools/analyzers/internal/bsvetutil"
	"golang.org/x/tools/go/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration that emits to ordered output sinks in the loop body (suppress with //bsvet:maporder)",
	URL:  "bitswapmon/tools/analyzers/maporder",
	Run:  run,
}

// emitMethods are method names that append to an ordered output: stream and
// builder writes, encoder emission, and trace-sink recording.
var emitMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteAll":    true,
	"Encode":      true,
	"Record":      true,
}

// emitFuncs are fmt package-level functions that write to a stream.
var emitFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) (any, error) {
	suppressed := bsvetutil.Suppressor(pass, "maporder")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(pass, rs) {
				return true
			}
			checkBody(pass, rs, suppressed)
			return true
		})
	}
	return nil, nil
}

// rangesOverMap reports whether rs iterates in map order: directly over a
// map value, or over the unsorted iterators maps.Keys/Values/All.
func rangesOverMap(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if tv, ok := pass.TypesInfo.Types[rs.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	call, ok := rs.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pn := bsvetutil.PkgName(pass, sel.X)
	if pn == nil || pn.Imported().Path() != "maps" {
		return false
	}
	switch sel.Sel.Name {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

// checkBody flags every emission call lexically inside the map-range body,
// except ones whose receiver is declared inside that body (a per-iteration
// local cannot leak iteration order into shared output).
func checkBody(pass *analysis.Pass, rs *ast.RangeStmt, suppressed func(token.Pos) bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pn := bsvetutil.PkgName(pass, sel.X); pn != nil {
			if pn.Imported().Path() == "fmt" && emitFuncs[sel.Sel.Name] && !suppressed(call.Pos()) {
				pass.Reportf(call.Pos(),
					"fmt.%s inside range over a map emits in nondeterministic order; iterate sorted keys instead (//bsvet:maporder to allow)",
					sel.Sel.Name)
			}
			return true
		}
		if !emitMethods[sel.Sel.Name] {
			return true
		}
		// Method call: only flag genuine methods, not field-stored funcs.
		if pass.TypesInfo.Selections[sel] == nil {
			return true
		}
		if declaredWithin(pass, sel.X, rs.Body) {
			return true
		}
		if !suppressed(call.Pos()) {
			pass.Reportf(call.Pos(),
				"%s inside range over a map emits in nondeterministic order; iterate sorted keys instead (//bsvet:maporder to allow)",
				sel.Sel.Name)
		}
		return true
	})
}

// declaredWithin reports whether the root identifier of e names an object
// declared inside body.
func declaredWithin(pass *analysis.Pass, e ast.Expr, body *ast.BlockStmt) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			// Emission through a freshly returned value (x.Writer().Write):
			// treat conservatively as shared.
			return false
		default:
			return false
		}
	}
}
