// Bsvet is the repo's custom vet tool: the bsvet analyzer suite packaged
// with the unitchecker protocol, so the standard build system drives it:
//
//	cd tools/analyzers && go build -o "$HOME/go/bin/bsvet" ./cmd/bsvet
//	go vet -vettool="$HOME/go/bin/bsvet" ./...
//
// See bitswapmon/tools/analyzers for what each analyzer enforces and the
// //bsvet: directive syntax.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"bitswapmon/tools/analyzers"
)

func main() {
	unitchecker.Main(analyzers.All()...)
}
