// Package repocheck asserts the bsvet suite runs clean over the main
// module: it builds cmd/bsvet and drives it through `go vet -vettool` the
// way CI does. A new violation anywhere in the repo fails this test with
// the analyzer's diagnostic.
package repocheck

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestBsvetCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-repo vet run")
	}
	moduleDir, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	repoRoot := filepath.Dir(filepath.Dir(moduleDir))
	if _, err := os.Stat(filepath.Join(repoRoot, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", repoRoot, err)
	}

	bin := filepath.Join(t.TempDir(), "bsvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/bsvet")
	build.Dir = moduleDir
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build bsvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = repoRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("bsvet found violations:\n%s", out)
	}
}
