package analyzers

import (
	"golang.org/x/tools/go/analysis"

	"bitswapmon/tools/analyzers/maporder"
	"bitswapmon/tools/analyzers/nowalltime"
	"bitswapmon/tools/analyzers/obshandle"
	"bitswapmon/tools/analyzers/shardaffinity"
)

// All returns the bsvet analyzer suite in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		nowalltime.Analyzer,
		obshandle.Analyzer,
		shardaffinity.Analyzer,
	}
}
