module bitswapmon

go 1.24
