// Command bsexperiments regenerates every table and figure of the paper
// from simulated scenarios.
//
// Usage:
//
//	bsexperiments [-scale small|default] [-seed N] [-only week|upgrade]
//	              [-spec FILE] [-dump-spec]
//	              [-engine serial|sharded] [-shards N]
//	              [-replay INPUTS] [-replay-mode replay|fitted]
//	              [-amplify N] [-timewarp N]
//	              [-trace-out FILE] [-trace-sample F]
//	              [-cpuprofile FILE] [-memprofile FILE] [-metrics-addr ADDR]
//
// -replay switches from the synthetic scenarios to trace-driven replay:
// INPUTS is a comma-separated list of recorded trace sources (segment-store
// directories, flat .trace files, or .csv exports — one per recording
// monitor). -replay-mode picks direct replay (re-issue every recorded entry
// at its recorded offset) or fitted replay (fit empirical models, generate
// a matched workload); -amplify scales the fitted population and volume,
// -timewarp compresses replayed time. The replay world's monitors are
// discovered from the inputs.
//
// The week scenario is assembled through a declarative sweep.ScenarioSpec:
// -scale picks a built-in spec, -spec loads one from a JSON file instead,
// and -dump-spec prints the assembled spec (after flag overrides) without
// running — the starting point for a sweep campaign's base spec. Explicitly
// set -seed/-engine/-shards flags override the spec from either source.
// Flags and spec files share one scenario-assembly code path, so a dumped
// spec reproduces exactly the run its flags would have performed.
//
// -trace-out enables the virtual-time causal flight recorder: sampled
// requests carry spans across workload → gateway → DHT → Bitswap → delivery,
// exported as Chrome trace-event JSON (open in Perfetto or chrome://tracing)
// with a .jsonl sidecar, and the report gains a span-driven per-stage latency
// breakdown. -trace-sample head-samples deterministically by seed, so the
// same requests are traced across engines and repeated runs.
//
// The serial engine is the deterministic reference (same seed, same bytes);
// the sharded engine runs the scenario across all cores with conservative
// lookahead synchronization, for large populations. The profile flags write
// pprof data for scaling work on either engine; -metrics-addr serves live
// Prometheus metrics and /debug/pprof while a run is in flight.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bitswapmon/internal/cmdutil"
	"bitswapmon/internal/experiments"
	"bitswapmon/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsexperiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bsexperiments", flag.ContinueOnError)
	scaleName := fs.String("scale", "small", "scenario scale: small or default")
	specPath := fs.String("spec", "", "load the week scenario from a spec file instead of -scale")
	dumpSpec := fs.Bool("dump-spec", false, "print the assembled scenario spec as JSON and exit")
	seed := fs.Int64("seed", 42, "simulation seed")
	only := fs.String("only", "", "run only one experiment: week or upgrade")
	upgradeNodes := fs.Int("upgrade-nodes", 150, "population for the Fig. 4 scenario")
	upgradeWeeks := fs.Int("upgrade-weeks", 3, "observed weeks for the Fig. 4 scenario")
	engineName := fs.String("engine", "serial", "simulation engine: serial or sharded")
	shards := fs.Int("shards", 0, "worker shards for -engine=sharded (0 = engine default)")
	replayInputs := fs.String("replay", "", "comma-separated recorded trace inputs (segment dirs, .trace, .csv): replay them instead of the synthetic scenarios")
	replayMode := fs.String("replay-mode", "replay", "trace replay mode: replay (direct) or fitted")
	amplify := fs.Float64("amplify", 0, "fitted-replay population/volume multiplier")
	timewarp := fs.Float64("timewarp", 0, "replay time compression factor (2 = twice as fast)")
	traceOut := fs.String("trace-out", "", "record causal request traces and write Chrome trace-event JSON (Perfetto-loadable) plus a .jsonl sidecar to this path")
	traceSample := fs.Float64("trace-sample", 1, "deterministic trace head-sampling rate in [0,1] (with -trace-out)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :9090) and enable instrumentation")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := assembleSpec(fs, *specPath, *scaleName, *seed, *engineName, *shards)
	if err != nil {
		return err
	}
	if *replayInputs != "" {
		spec.WorkloadSource = &sweep.WorkloadSourceSpec{
			Mode:     *replayMode,
			Inputs:   strings.Split(*replayInputs, ","),
			TimeWarp: *timewarp,
			Amplify:  *amplify,
		}
		// The replay world's monitors come from the trace, not the
		// synthetic scenario's vantage points.
		spec.Monitors = nil
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		spec.Trace = true
		spec.TraceSample = *traceSample
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	if *dumpSpec {
		blob, err := spec.Marshal()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(blob)
		return err
	}

	srv, err := cmdutil.ServeMetrics(*metricsAddr)
	if err != nil {
		return err
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "bsexperiments: serving metrics on http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}
	prof, err := cmdutil.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}

	if spec.ReplayMode() {
		rep, err := experiments.RunReplay(spec)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		fmt.Println(rep.Render())
		if err := cmdutil.ExportTrace("bsexperiments", *traceOut, rep.Tracer); err != nil {
			return err
		}
		return prof.Stop()
	}

	if *only == "" || *only == "week" {
		rep, err := experiments.RunWeekSpec(spec)
		if err != nil {
			return fmt.Errorf("week scenario: %w", err)
		}
		fmt.Println(rep.Render())
		if err := cmdutil.ExportTrace("bsexperiments", *traceOut, rep.Tracer); err != nil {
			return err
		}
	}
	if *only == "" || *only == "upgrade" {
		newEngine, err := spec.NewEngine()
		if err != nil {
			return err
		}
		rep, err := experiments.RunUpgrade(*upgradeNodes, *upgradeWeeks, spec.Seed, newEngine)
		if err != nil {
			return fmt.Errorf("upgrade scenario: %w", err)
		}
		fmt.Println(rep.Render())
	}

	return prof.Stop()
}

// assembleSpec builds the week scenario spec from -spec or -scale, then
// applies explicitly set flag overrides, so a spec file and flags compose
// rather than conflict.
func assembleSpec(fs *flag.FlagSet, specPath, scaleName string, seed int64, engineName string, shards int) (sweep.ScenarioSpec, error) {
	var spec sweep.ScenarioSpec
	if specPath != "" {
		var err error
		spec, err = sweep.LoadSpec(specPath)
		if err != nil {
			return spec, err
		}
	} else {
		var scale experiments.Scale
		switch scaleName {
		case "small":
			scale = experiments.SmallScale()
		case "default":
			scale = experiments.DefaultScale()
		default:
			return spec, fmt.Errorf("unknown scale %q", scaleName)
		}
		spec = scale.Spec(seed)
	}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			spec.Seed = seed
		case "engine":
			spec.Engine = engineName
		case "shards":
			spec.Shards = shards
		}
	})
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}
