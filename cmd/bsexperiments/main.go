// Command bsexperiments regenerates every table and figure of the paper
// from simulated scenarios.
//
// Usage:
//
//	bsexperiments [-scale small|default] [-seed N] [-only week|upgrade]
package main

import (
	"flag"
	"fmt"
	"os"

	"bitswapmon/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsexperiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bsexperiments", flag.ContinueOnError)
	scaleName := fs.String("scale", "small", "scenario scale: small or default")
	seed := fs.Int64("seed", 42, "simulation seed")
	only := fs.String("only", "", "run only one experiment: week or upgrade")
	upgradeNodes := fs.Int("upgrade-nodes", 150, "population for the Fig. 4 scenario")
	upgradeWeeks := fs.Int("upgrade-weeks", 3, "observed weeks for the Fig. 4 scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "default":
		scale = experiments.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	if *only == "" || *only == "week" {
		rep, err := experiments.RunWeek(scale, *seed)
		if err != nil {
			return fmt.Errorf("week scenario: %w", err)
		}
		fmt.Println(rep.Render())
	}
	if *only == "" || *only == "upgrade" {
		rep, err := experiments.RunUpgrade(*upgradeNodes, *upgradeWeeks, *seed)
		if err != nil {
			return fmt.Errorf("upgrade scenario: %w", err)
		}
		fmt.Println(rep.Render())
	}
	return nil
}
