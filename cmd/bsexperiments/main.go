// Command bsexperiments regenerates every table and figure of the paper
// from simulated scenarios.
//
// Usage:
//
//	bsexperiments [-scale small|default] [-seed N] [-only week|upgrade]
//	              [-engine serial|sharded] [-shards N]
//	              [-cpuprofile FILE] [-memprofile FILE]
//
// The serial engine is the deterministic reference (same seed, same bytes);
// the sharded engine runs the scenario across all cores with conservative
// lookahead synchronization, for large populations. The profile flags write
// pprof data for scaling work on either engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"bitswapmon/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsexperiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bsexperiments", flag.ContinueOnError)
	scaleName := fs.String("scale", "small", "scenario scale: small or default")
	seed := fs.Int64("seed", 42, "simulation seed")
	only := fs.String("only", "", "run only one experiment: week or upgrade")
	upgradeNodes := fs.Int("upgrade-nodes", 150, "population for the Fig. 4 scenario")
	upgradeWeeks := fs.Int("upgrade-weeks", 3, "observed weeks for the Fig. 4 scenario")
	engineName := fs.String("engine", "serial", "simulation engine: serial or sharded")
	shards := fs.Int("shards", 0, "worker shards for -engine=sharded (0 = engine default)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "default":
		scale = experiments.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	scale.Engine = *engineName
	scale.Shards = *shards
	if _, err := scale.NewEngine(); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *only == "" || *only == "week" {
		rep, err := experiments.RunWeek(scale, *seed)
		if err != nil {
			return fmt.Errorf("week scenario: %w", err)
		}
		fmt.Println(rep.Render())
	}
	if *only == "" || *only == "upgrade" {
		newEngine, err := scale.NewEngine()
		if err != nil {
			return err
		}
		rep, err := experiments.RunUpgrade(*upgradeNodes, *upgradeWeeks, *seed, newEngine)
		if err != nil {
			return fmt.Errorf("upgrade scenario: %w", err)
		}
		fmt.Println(rep.Render())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}
