package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bitswapmon/internal/cid"
	"bitswapmon/internal/ingest"
	"bitswapmon/internal/report"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/trace"
	"bitswapmon/internal/wire"
)

// writeTestTrace creates a small binary trace file.
func writeTestTrace(t *testing.T, path, mon string, n int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		var id simnet.NodeID
		id[0] = byte(i % 7)
		e := trace.Entry{
			Timestamp: base.Add(time.Duration(i) * time.Minute),
			Monitor:   mon,
			NodeID:    id,
			Addr:      "3.0.0.1:4001",
			Type:      wire.WantHave,
			CID:       cid.Sum(cid.DagProtobuf, []byte{byte(i % 30)}),
		}
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBsanalyzeReports(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "us.trace")
	p2 := filepath.Join(dir, "de.trace")
	writeTestTrace(t, p1, "us", 120)
	writeTestTrace(t, p2, "de", 80)

	for _, name := range []string{"summary", "online", "table1", "table2", "fig4", "traffic"} {
		if err := run([]string{"-report", name, p1, p2}); err != nil {
			t.Errorf("report %s: %v", name, err)
		}
	}
	// Any combination runs in one pass over the same inputs.
	if err := run([]string{"-report", "summary,table1,table2,fig4,popularity", p1, p2}); err != nil {
		t.Errorf("multi-report pass: %v", err)
	}
	// Spaces after commas are tolerated.
	if err := run([]string{"-report", "summary, table1", p1, p2}); err != nil {
		t.Errorf("spaced report list: %v", err)
	}
}

// TestBsanalyzeUnknownReport: unknown names fail before any input is
// opened, and the error lists the registry so the operator can self-serve.
func TestBsanalyzeUnknownReport(t *testing.T) {
	err := run([]string{"-report", "vibes", "does-not-exist"})
	if err == nil {
		t.Fatal("unknown report accepted")
	}
	for _, name := range report.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %v", name, err)
		}
	}
	// One bad name poisons a multi-report list too.
	if err := run([]string{"-report", "summary,vibes", "does-not-exist"}); err == nil ||
		!strings.Contains(err.Error(), "vibes") {
		t.Errorf("bad name in list: %v", err)
	}
}

// writeTestStore creates a segment-store directory with the same entries
// writeTestTrace would produce.
func writeTestStore(t *testing.T, dir, mon string, n int) {
	t.Helper()
	store, err := ingest.OpenSegmentStore(dir, ingest.SegmentOptions{Rotation: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		var id simnet.NodeID
		id[0] = byte(i % 7)
		e := trace.Entry{
			Timestamp: base.Add(time.Duration(i) * time.Minute),
			Monitor:   mon,
			NodeID:    id,
			Addr:      "3.0.0.1:4001",
			Type:      wire.WantHave,
			CID:       cid.Sum(cid.DagProtobuf, []byte{byte(i % 30)}),
		}
		if err := store.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBsanalyzeSegmentDirInputs(t *testing.T) {
	dir := t.TempDir()
	s1 := filepath.Join(dir, "us.segments")
	writeTestStore(t, s1, "us", 120)
	p2 := filepath.Join(dir, "de.trace")
	writeTestTrace(t, p2, "de", 80)

	// Mixed inputs: one segment store, one flat file. The popularity
	// (ECDF) report streams from segment dirs like every other report.
	for _, report := range []string{"summary", "online", "table1", "fig4", "popularity"} {
		if err := run([]string{"-report", report, s1, p2}); err != nil {
			t.Errorf("report %s over mixed inputs: %v", report, err)
		}
	}

	// A directory that is not a segment store is rejected.
	empty := filepath.Join(dir, "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}); err == nil {
		t.Error("empty directory accepted as store")
	}
}

func TestBsanalyzeCorruptStoreFails(t *testing.T) {
	dir := t.TempDir()

	// A store directory that does not exist must fail, not report nothing.
	if err := run([]string{filepath.Join(dir, "nope.segments")}); err == nil {
		t.Error("missing segment directory accepted")
	}

	// A valid store with one footer-less segment file (crash leftover or
	// truncation) must fail rather than print a partial report.
	s := filepath.Join(dir, "us.segments")
	writeTestStore(t, s, "us", 60)
	if err := os.WriteFile(filepath.Join(s, "999999.seg"), []byte("torn segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{s}); err == nil {
		t.Error("store with corrupt segment footer accepted")
	}

	// A sealed segment whose footer bytes were damaged in place must fail
	// too.
	s2 := filepath.Join(dir, "de.segments")
	writeTestStore(t, s2, "de", 60)
	segs, err := filepath.Glob(filepath.Join(s2, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments written: %v", err)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("XXXXXXXX"), st.Size()-8); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{s2}); err == nil {
		t.Error("store with damaged footer magic accepted")
	}
}

func TestBsanalyzeErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no files accepted")
	}
	if err := run([]string{"-report", "nope", "x"}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "t.trace")
	writeTestTrace(t, p, "us", 10)
	if err := run([]string{"-report", "nope", p}); err == nil {
		t.Error("unknown report accepted")
	}
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("garbage trace accepted")
	}
}
