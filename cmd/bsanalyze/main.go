// Command bsanalyze unifies binary trace files from one or more monitors
// and runs the paper's trace analyses on them.
//
// Usage:
//
//	bsanalyze [-dedup] [-report summary|table1|table2|fig4|fig5|fig6] FILE...
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"bitswapmon/internal/analysis"
	"bitswapmon/internal/geoip"
	"bitswapmon/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bsanalyze", flag.ContinueOnError)
	report := fs.String("report", "summary", "analysis to run: summary, table1, table2, fig4, fig5")
	dedup := fs.Bool("dedup", true, "filter duplicates/rebroadcasts before analysis")
	bucket := fs.Duration("bucket", time.Hour, "bucket size for fig4")
	iters := fs.Int("iters", 50, "bootstrap iterations for fig5")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no trace files given")
	}

	var traces [][]trace.Entry
	for _, path := range files {
		entries, err := loadTrace(path)
		if err != nil {
			return err
		}
		traces = append(traces, entries)
	}
	unified := trace.Unify(traces...)
	entries := unified
	if *dedup {
		entries = trace.Deduplicated(unified)
	}

	switch *report {
	case "summary":
		s := trace.Summarize(unified)
		fmt.Printf("entries: %d (requests %d), peers %d, CIDs %d\n", s.Entries, s.Requests, s.UniquePeers, s.UniqueCIDs)
		fmt.Printf("rebroadcasts: %d, inter-monitor dups: %d\n", s.Rebroadcasts, s.InterMonDups)
		fmt.Printf("window: %s .. %s\n", s.First.Format(time.RFC3339), s.Last.Format(time.RFC3339))
		for mon, n := range s.PerMonitor {
			fmt.Printf("  monitor %s: %d entries\n", mon, n)
		}
		for typ, n := range s.PerType {
			fmt.Printf("  %s: %d\n", typ, n)
		}
	case "table1":
		fmt.Println(analysis.ComputeTable1(unified).Render())
	case "table2":
		fmt.Println(analysis.ComputeTable2(entries, geoip.New()).Render())
	case "fig4":
		fmt.Println(analysis.ComputeFig4(entries, *bucket).Render())
	case "fig5":
		f, err := analysis.ComputeFig5(entries, *iters, rand.New(rand.NewSource(1)))
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	default:
		return fmt.Errorf("unknown report %q", *report)
	}
	return nil
}

func loadTrace(path string) ([]trace.Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	entries, err := trace.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	return entries, nil
}
