// Command bsanalyze unifies monitor traces and runs the paper's analyses.
// Inputs may be flat binary trace files (bsmon's M.trace) or segment store
// directories (bsmon's M.segments); each input is one monitor's
// time-ordered stream. Unification runs online through ingest.StreamUnifier
// — identical flags to the batch trace.Unify, but one sliding window of
// state — and every report observes the unified stream entry by entry, so
// memory is bounded by report state, never trace length.
//
// Usage:
//
//	bsanalyze [-dedup] [-report NAME[,NAME...]] INPUT...
//
// -report names any combination of registered reports (internal/report);
// all of them run in the same single pass over the inputs. Each report
// declares whether it consumes the raw or the deduplicated view — Table I
// counts duplicate requests per the paper, Table II and the figures do not
// — and -dedup=false feeds everything the raw trace. Unknown report names
// fail before any input is opened, listing what is available.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bitswapmon/internal/geoip"
	"bitswapmon/internal/ingest"
	"bitswapmon/internal/report"
	"bitswapmon/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bsanalyze", flag.ContinueOnError)
	reports := fs.String("report", "summary", "comma-separated reports to run in one pass: "+strings.Join(report.Names(), ", "))
	dedup := fs.Bool("dedup", true, "filter duplicates/rebroadcasts for reports that analyse the deduplicated view")
	bucket := fs.Duration("bucket", time.Hour, "bucket size for fig4 and online")
	iters := fs.Int("iters", 50, "bootstrap iterations for fig5 and popularity")
	topk := fs.Int("topk", 10, "popular CIDs to list for online")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Resolve every report before opening (and potentially draining) the
	// inputs: an unknown name must fail fast, with the registry's list.
	opts := report.Options{
		Bucket:         *bucket,
		TopK:           *topk,
		BootstrapIters: *iters,
		Geo:            geoip.New(),
	}
	names := strings.Split(*reports, ",")
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
	}
	drv := report.NewDriver(*dedup)
	if err := drv.AddByName(names, opts); err != nil {
		return err
	}

	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("no trace inputs given")
	}
	sources, cleanup, err := openSources(paths)
	if err != nil {
		return err
	}
	defer cleanup()

	// One pass: the unified stream is teed through every requested report.
	if err := drv.Run(ingest.NewStreamUnifier(sources...)); err != nil {
		return err
	}
	// A report that cannot finalize (e.g. fig5 on a trace too small to
	// fit) must not swallow the others' completed results: print what
	// succeeded, then fail.
	results, ferr := drv.Finalize()
	for _, nr := range results {
		if nr.Result == nil {
			continue
		}
		// Diagnostics stay on stderr; stdout carries only report bodies.
		if online, ok := nr.Result.(*report.Online); ok && online.EvictedBuckets > 0 {
			fmt.Fprintf(os.Stderr, "bsanalyze: warning: %d oldest time buckets evicted; the online series covers only the trace tail (raise -bucket)\n", online.EvictedBuckets)
		}
		if len(results) > 1 {
			fmt.Printf("==== %s ====\n", nr.Name)
		}
		fmt.Println(nr.Result.Render())
	}
	return ferr
}

// openSources opens each input as an EntrySource: a directory is a segment
// store, a file a flat binary trace.
func openSources(paths []string) ([]ingest.EntrySource, func(), error) {
	var sources []ingest.EntrySource
	var closers []io.Closer
	cleanup := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	for _, path := range paths {
		st, err := os.Stat(path)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("open %s: %w", path, err)
		}
		if st.IsDir() {
			store, err := ingest.OpenSegmentStore(path, ingest.SegmentOptions{})
			if err != nil {
				cleanup()
				return nil, nil, fmt.Errorf("open store %s: %w", path, err)
			}
			if store.Totals().Entries == 0 {
				cleanup()
				return nil, nil, fmt.Errorf("open store %s: no sealed segments", path)
			}
			// A crash (or truncation) leaves segments without a valid
			// footer. Analysing around them would silently drop entries
			// and print a partial report as if it were complete — fail
			// instead and let the operator repair or remove the files.
			if orphans := store.Skipped(); len(orphans) > 0 {
				cleanup()
				return nil, nil, fmt.Errorf("store %s has %d segment file(s) without a valid footer (crash leftovers or corruption, e.g. %s); remove or repair them before analysing", path, len(orphans), orphans[0])
			}
			it, err := store.Query(time.Time{}, time.Time{}, nil)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			sources = append(sources, it)
			closers = append(closers, it)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("open %s: %w", path, err)
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			cleanup()
			return nil, nil, fmt.Errorf("read %s: %w", path, err)
		}
		sources = append(sources, r)
		closers = append(closers, f)
	}
	return sources, cleanup, nil
}
