// Command bsanalyze unifies monitor traces and runs the paper's analyses.
// Inputs may be flat binary trace files (bsmon's M.trace) or segment store
// directories (bsmon's M.segments); each input is one monitor's
// time-ordered stream. Unification runs online through ingest.StreamUnifier
// — identical flags to the batch trace.Unify, but one sliding window of
// state — and the summary and online reports never materialise the trace
// in memory.
//
// Usage:
//
//	bsanalyze [-dedup] [-report summary|online|popularity|table1|table2|fig4|fig5] INPUT...
//
// The popularity report streams the unified trace through an incremental
// RRP/URP counter (memory proportional to distinct CIDs, not trace length)
// and prints both ECDFs plus the CSN power-law fit; like every report it
// accepts segment-store directories as well as flat trace files.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"bitswapmon/internal/analysis"
	"bitswapmon/internal/geoip"
	"bitswapmon/internal/ingest"
	"bitswapmon/internal/popularity"
	"bitswapmon/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bsanalyze", flag.ContinueOnError)
	report := fs.String("report", "summary", "analysis to run: summary, online, popularity, table1, table2, fig4, fig5")
	dedup := fs.Bool("dedup", true, "filter duplicates/rebroadcasts before analysis")
	bucket := fs.Duration("bucket", time.Hour, "bucket size for fig4 and online")
	iters := fs.Int("iters", 50, "bootstrap iterations for fig5")
	topk := fs.Int("topk", 10, "popular CIDs to list for online")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *report {
	case "summary", "online", "popularity", "table1", "table2", "fig4", "fig5":
	default:
		// Reject before opening (and potentially draining) the inputs.
		return fmt.Errorf("unknown report %q", *report)
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("no trace inputs given")
	}

	sources, cleanup, err := openSources(paths)
	if err != nil {
		return err
	}
	defer cleanup()
	unified := ingest.NewStreamUnifier(sources...)

	switch *report {
	case "summary":
		// One pass, no resident trace: summarise the unified stream as it
		// is produced.
		z := trace.NewSummarizer()
		if _, err := ingest.Copy(z, unified); err != nil {
			return err
		}
		printSummary(z.Summary())
	case "online":
		// One pass with sketched aggregates: the figures a long-running
		// collector can afford to keep per entry.
		stats := ingest.NewOnlineStats(ingest.StatsOptions{Bucket: *bucket, TopK: *topk})
		dst := ingest.Sink(stats)
		if *dedup {
			dst = dedupSink{stats}
		}
		if _, err := ingest.Copy(dst, unified); err != nil {
			return err
		}
		printOnline(stats, *topk)
	case "popularity":
		// One pass into the incremental RRP/URP counter: segment stores
		// and flat files alike stream through the unifier, never resident.
		counter := popularity.NewCounter()
		dst := ingest.Sink(counter)
		if *dedup {
			dst = dedupSink{counter}
		}
		if _, err := ingest.Copy(dst, unified); err != nil {
			return err
		}
		printPopularity(counter, *iters)
	default:
		// The remaining reports need the full (possibly deduplicated)
		// trace resident.
		entries, err := drainFiltered(unified, *dedup && *report != "table1")
		if err != nil {
			return err
		}
		switch *report {
		case "table1":
			fmt.Println(analysis.ComputeTable1(entries).Render())
		case "table2":
			fmt.Println(analysis.ComputeTable2(entries, geoip.New()).Render())
		case "fig4":
			fmt.Println(analysis.ComputeFig4(entries, *bucket).Render())
		case "fig5":
			f, err := analysis.ComputeFig5(entries, *iters, rand.New(rand.NewSource(1)))
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		}
	}
	return nil
}

// openSources opens each input as an EntrySource: a directory is a segment
// store, a file a flat binary trace.
func openSources(paths []string) ([]ingest.EntrySource, func(), error) {
	var sources []ingest.EntrySource
	var closers []io.Closer
	cleanup := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	for _, path := range paths {
		st, err := os.Stat(path)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("open %s: %w", path, err)
		}
		if st.IsDir() {
			store, err := ingest.OpenSegmentStore(path, ingest.SegmentOptions{})
			if err != nil {
				cleanup()
				return nil, nil, fmt.Errorf("open store %s: %w", path, err)
			}
			if store.Totals().Entries == 0 {
				cleanup()
				return nil, nil, fmt.Errorf("open store %s: no sealed segments", path)
			}
			// A crash (or truncation) leaves segments without a valid
			// footer. Analysing around them would silently drop entries
			// and print a partial report as if it were complete — fail
			// instead and let the operator repair or remove the files.
			if orphans := store.Skipped(); len(orphans) > 0 {
				cleanup()
				return nil, nil, fmt.Errorf("store %s has %d segment file(s) without a valid footer (crash leftovers or corruption, e.g. %s); remove or repair them before analysing", path, len(orphans), orphans[0])
			}
			it, err := store.Query(time.Time{}, time.Time{}, nil)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			sources = append(sources, it)
			closers = append(closers, it)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("open %s: %w", path, err)
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			cleanup()
			return nil, nil, fmt.Errorf("read %s: %w", path, err)
		}
		sources = append(sources, r)
		closers = append(closers, f)
	}
	return sources, cleanup, nil
}

// dedupSink drops flagged duplicates before the wrapped sink.
type dedupSink struct{ s ingest.Sink }

func (d dedupSink) Write(e trace.Entry) error {
	if e.IsDuplicate() {
		return nil
	}
	return d.s.Write(e)
}

// drainFiltered materialises the unified stream, optionally dropping
// duplicates on the way in (so the resident slice is already the dedup
// view).
func drainFiltered(src ingest.EntrySource, dedup bool) ([]trace.Entry, error) {
	if !dedup {
		return ingest.Drain(src)
	}
	var out []trace.Entry
	for {
		e, err := src.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if !e.IsDuplicate() {
			out = append(out, e)
		}
	}
}

func printSummary(s trace.Summary) {
	fmt.Printf("entries: %d (requests %d), peers %d, CIDs %d\n", s.Entries, s.Requests, s.UniquePeers, s.UniqueCIDs)
	fmt.Printf("rebroadcasts: %d, inter-monitor dups: %d\n", s.Rebroadcasts, s.InterMonDups)
	fmt.Printf("window: %s .. %s\n", s.First.Format(time.RFC3339), s.Last.Format(time.RFC3339))
	for mon, n := range s.PerMonitor {
		fmt.Printf("  monitor %s: %d entries\n", mon, n)
	}
	for typ, n := range s.PerType {
		fmt.Printf("  %s: %d\n", typ, n)
	}
}

func printPopularity(c *popularity.Counter, iters int) {
	scores := c.Scores()
	rrp := popularity.Values(scores.RRP)
	urp := popularity.Values(scores.URP)
	fmt.Printf("distinct CIDs: %d\n", c.CIDs())
	fmt.Printf("single-requester CIDs (URP = 1): %.1f%%\n", 100*popularity.ShareWithValue(urp, 1))
	printECDF("RRP", popularity.ECDF(rrp))
	printECDF("URP", popularity.ECDF(urp))
	if rejected, fit, p, err := popularity.RejectsPowerLaw(rrp, iters, rand.New(rand.NewSource(1))); err != nil {
		fmt.Printf("power-law fit (RRP): %v\n", err)
	} else {
		verdict := "not rejected"
		if rejected {
			verdict = "REJECTED"
		}
		fmt.Printf("power-law fit (RRP): alpha=%.3f xmin=%d KS=%.4f p=%.2f => %s\n",
			fit.Alpha, fit.Xmin, fit.KS, p, verdict)
	}
}

// printECDF renders an ECDF compactly: every point for small supports, key
// quantiles otherwise.
func printECDF(label string, pts []popularity.ECDFPoint) {
	fmt.Printf("%s ECDF:\n", label)
	if len(pts) <= 12 {
		for _, p := range pts {
			fmt.Printf("  P(X <= %.0f) = %.4f\n", p.Value, p.Prob)
		}
		return
	}
	targets := []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1}
	i := 0
	for _, q := range targets {
		for i < len(pts)-1 && pts[i].Prob < q {
			i++
		}
		fmt.Printf("  P(X <= %.0f) = %.4f\n", pts[i].Value, pts[i].Prob)
	}
}

func printOnline(s *ingest.OnlineStats, topk int) {
	fmt.Printf("entries: %d (requests %d)\n", s.Entries(), s.Requests())
	fmt.Printf("distinct peers ~%.0f, distinct CIDs ~%.0f\n", s.DistinctPeers(), s.DistinctCIDs())
	fmt.Printf("window: %s .. %s\n", s.First().Format(time.RFC3339), s.Last().Format(time.RFC3339))
	for typ, n := range s.TypeCounts() {
		fmt.Printf("  %s: %d\n", typ, n)
	}
	if n := s.EvictedBuckets(); n > 0 {
		fmt.Fprintf(os.Stderr, "bsanalyze: warning: %d oldest time buckets evicted; the series below covers only the trace tail (raise -bucket)\n", n)
	}
	fmt.Println(analysis.Fig4FromStats(s).Render())
	fmt.Printf("top %d CIDs (space-saving estimates):\n", topk)
	for i, tc := range s.TopCIDs(topk) {
		fmt.Printf("  %2d. %s  ~%d requests (overcount <= %d)\n", i+1, tc.CID, tc.Count, tc.ErrBound)
	}
}
