// Command bsbench records the repository's performance trajectory in
// machine-readable form: it runs the hot-path benchmarks bare and with the
// obs instrumentation enabled (BSMON_BENCH_METRICS=1) — plus, for the replay
// drive, with request tracing enabled (BSMON_BENCH_TRACE=1) — and writes the
// parsed results to BENCH_engine.json and BENCH_report.json, including the
// overhead each benchmark paid per mode.
//
// Usage:
//
//	bsbench [-out DIR] [-benchtime T] [-C MODULE_DIR] [-only RE]
//	        [-max-overhead PCT] [-max-trace-overhead PCT]
//
// BENCH_report.json holds the report-driver throughput (the "all figures at
// once" analysis path); BENCH_engine.json holds trace replay and the
// simulator event loop, with the traced replay recorded alongside the
// metrics columns. -max-overhead makes bsbench exit nonzero when the
// instrumented ns/op regresses more than PCT percent over bare — the
// enforcement knob for the ≤5% instrumentation budget; -max-trace-overhead
// is the same knob for the traced-vs-untraced replay column. -only restricts
// the run to configured benchmarks matching a regexp (the CI smoke uses it
// to budget-check just the replay drive).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchFiles maps each output file to the benchmarks it records. A name
// also matches its sub-benchmarks (Name/sub), so BenchmarkEngineScaling
// records the whole serial/sharded scaling trajectory.
var benchFiles = map[string][]string{
	"BENCH_report.json": {"BenchmarkReportDriver"},
	"BENCH_engine.json": {"BenchmarkReplayDrive", "BenchmarkSimnetEventLoop", "BenchmarkEngineScaling"},
}

// tracedBenches lists the benchmarks that honor BSMON_BENCH_TRACE: they get a
// third, traced run recorded next to the bare/instrumented pair.
var tracedBenches = map[string]bool{"BenchmarkReplayDrive": true}

// Measurement is one parsed benchmark line.
type Measurement struct {
	N            int     `json:"n"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// Entry pairs a benchmark's bare and instrumented runs, plus the traced run
// for benchmarks that have one.
type Entry struct {
	Name    string       `json:"name"`
	Bare    *Measurement `json:"bare"`
	Metrics *Measurement `json:"metrics_enabled"`
	Traced  *Measurement `json:"traced,omitempty"`
	// OverheadPct is the instrumented ns/op regression over bare, in
	// percent; negative means the instrumented run measured faster (noise).
	OverheadPct float64 `json:"overhead_pct"`
	// TraceOverheadPct is the traced-vs-untraced regression for benchmarks
	// that run a traced mode (the otrace recording cost at its benchmark
	// sampling rate).
	TraceOverheadPct float64 `json:"trace_overhead_pct,omitempty"`
}

// File is one BENCH_*.json document.
type File struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	Benchtime  string  `json:"benchtime"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bsbench", flag.ContinueOnError)
	outDir := fs.String("out", ".", "directory for the BENCH_*.json files")
	benchtime := fs.String("benchtime", "2s", "go test -benchtime value")
	count := fs.Int("count", 3, "interleaved bare/instrumented rounds; the fastest of each benchmark is recorded")
	moduleDir := fs.String("C", ".", "module directory to run go test in")
	maxOverhead := fs.Float64("max-overhead", 0, "fail when instrumented ns/op regresses more than this percent (0 = record only)")
	maxTraceOverhead := fs.Float64("max-trace-overhead", 0, "fail when traced ns/op regresses more than this percent over untraced (0 = record only)")
	only := fs.String("only", "", "regexp restricting the run to matching configured benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var filter *regexp.Regexp
	if *only != "" {
		var err error
		if filter, err = regexp.Compile(*only); err != nil {
			return fmt.Errorf("-only: %w", err)
		}
	}
	selected := func(name string) bool { return filter == nil || filter.MatchString(name) }

	var names, tracedNames []string
	for _, ns := range benchFiles {
		for _, n := range ns {
			if !selected(n) {
				continue
			}
			names = append(names, n)
			if tracedBenches[n] {
				tracedNames = append(tracedNames, n)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-only %q matches no configured benchmark", *only)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	pattern := "^(" + strings.Join(names, "|") + ")$"

	// Alternate bare, instrumented and traced invocations so all modes
	// sample the same machine conditions — on shared hardware, back-to-back
	// blocks of one mode read ambient load differences as overhead.
	bare := make(map[string]*Measurement)
	instrumented := make(map[string]*Measurement)
	traced := make(map[string]*Measurement)
	for round := 0; round < *count; round++ {
		b, err := runBenchmarks(*moduleDir, pattern, *benchtime, round, *count, "bare")
		if err != nil {
			return err
		}
		mergeFastest(bare, b)
		m, err := runBenchmarks(*moduleDir, pattern, *benchtime, round, *count, "instrumented")
		if err != nil {
			return err
		}
		mergeFastest(instrumented, m)
		if len(tracedNames) > 0 {
			tracePattern := "^(" + strings.Join(tracedNames, "|") + ")$"
			tm, err := runBenchmarks(*moduleDir, tracePattern, *benchtime, round, *count, "traced")
			if err != nil {
				return err
			}
			mergeFastest(traced, tm)
		}
	}

	var worst, worstTrace float64
	var worstName, worstTraceName string
	paths := make([]string, 0, len(benchFiles))
	for path := range benchFiles {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		ns := benchFiles[path]
		doc := File{
			Date:      time.Now().UTC().Format("2006-01-02"),
			GoVersion: runtime.Version(),
			Benchtime: *benchtime,
		}
		for _, name := range ns {
			if !selected(name) {
				continue
			}
			// A configured name stands for itself plus any sub-benchmarks
			// (Name/sub). Sub-benchmarks skipped in this environment (e.g.
			// population sizes gated on CPU count) simply produce no line.
			matched := matchedNames(bare, name)
			if len(matched) == 0 {
				return fmt.Errorf("benchmark %s missing from bare run", name)
			}
			for _, mn := range matched {
				b := bare[mn]
				m, ok := instrumented[mn]
				if !ok {
					return fmt.Errorf("benchmark %s missing from instrumented run", mn)
				}
				e := Entry{Name: mn, Bare: b, Metrics: m}
				if b.NsPerOp > 0 {
					e.OverheadPct = (m.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
				}
				if e.OverheadPct > worst {
					worst, worstName = e.OverheadPct, mn
				}
				if tm, ok := traced[mn]; ok {
					e.Traced = tm
					if b.NsPerOp > 0 {
						e.TraceOverheadPct = (tm.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
					}
					if e.TraceOverheadPct > worstTrace {
						worstTrace, worstTraceName = e.TraceOverheadPct, mn
					}
				}
				doc.Benchmarks = append(doc.Benchmarks, e)
			}
		}
		if len(doc.Benchmarks) == 0 {
			continue // -only filtered this file's benchmarks out entirely
		}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		full := filepath.Join(*outDir, path)
		if err := os.WriteFile(full, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", full, len(doc.Benchmarks))
	}
	if *maxOverhead > 0 && worst > *maxOverhead {
		return fmt.Errorf("%s instrumentation overhead %.1f%% exceeds budget %.1f%%", worstName, worst, *maxOverhead)
	}
	if *maxTraceOverhead > 0 && worstTrace > *maxTraceOverhead {
		return fmt.Errorf("%s tracing overhead %.1f%% exceeds budget %.1f%%", worstTraceName, worstTrace, *maxTraceOverhead)
	}
	return nil
}

// matchedNames returns the measured names covered by a configured benchmark
// name — the name itself and any "name/sub" sub-benchmarks — in sorted order.
func matchedNames(results map[string]*Measurement, name string) []string {
	var out []string
	for mn := range results {
		if mn == name || strings.HasPrefix(mn, name+"/") {
			out = append(out, mn)
		}
	}
	sort.Strings(out)
	return out
}

// mergeFastest folds one round's measurements into acc, keeping the lowest
// ns/op per benchmark.
func mergeFastest(acc, round map[string]*Measurement) {
	for name, m := range round {
		if prev, ok := acc[name]; !ok || m.NsPerOp < prev.NsPerOp {
			acc[name] = m
		}
	}
}

// runBenchmarks invokes go test -bench once in the given mode ("bare",
// "instrumented" or "traced") and parses the result lines.
func runBenchmarks(dir, pattern, benchtime string, round, rounds int, mode string) (map[string]*Measurement, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime, ".")
	cmd.Dir = dir
	cmd.Env = os.Environ()
	switch mode {
	case "instrumented":
		cmd.Env = append(cmd.Env, "BSMON_BENCH_METRICS=1")
	case "traced":
		cmd.Env = append(cmd.Env, "BSMON_BENCH_TRACE=1")
	}
	fmt.Printf("round %d/%d: %s benchmarks...\n", round+1, rounds, mode)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench (%s): %w\n%s", mode, err, out)
	}
	return parseBenchOutput(string(out))
}

// stripProcSuffix removes the -GOMAXPROCS suffix go test appends to result
// lines. Only the exact effective GOMAXPROCS value is stripped: with
// GOMAXPROCS=1 no suffix is printed at all, and a blind trailing "-N" strip
// would eat the shard count from sub-benchmark names like "sharded-8".
func stripProcSuffix(name string) string {
	procs := runtime.GOMAXPROCS(0)
	if v := os.Getenv("GOMAXPROCS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			procs = n
		}
	}
	if procs == 1 {
		return name
	}
	suffix := "-" + strconv.Itoa(procs)
	return strings.TrimSuffix(name, suffix)
}

// parseBenchOutput extracts benchmark result lines of the form
//
//	BenchmarkName-8  12  91972690 ns/op  217456 events/sec  37188956 B/op  422104 allocs/op
//
// into Measurements keyed by the bare benchmark name. Repeated lines for
// one name keep the fastest ns/op.
func parseBenchOutput(out string) (map[string]*Measurement, error) {
	results := make(map[string]*Measurement)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcSuffix(fields[0])
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		m := &Measurement{N: n}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q in %q: %w", fields[i], line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "events/sec":
				m.EventsPerSec = v
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if prev, ok := results[name]; !ok || m.NsPerOp < prev.NsPerOp {
			results[name] = m
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", out)
	}
	return results, nil
}
