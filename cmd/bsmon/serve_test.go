package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bitswapmon/internal/ingest"
	"bitswapmon/internal/report"
)

// startRun launches run(args) in the background and returns a channel with
// its result. The caller must have its own SIGTERM subscription installed
// first, so a self-signal can never hit the default (fatal) handler.
func startRun(args []string) <-chan error {
	done := make(chan error, 1)
	go func() { done <- run(args) }()
	return done
}

// signalUntilDone sends SIGTERM to the test process until run returns: the
// first signal can race run's own signal.NotifyContext installation, and
// the test's subscription absorbs every delivery either way.
func signalUntilDone(t *testing.T, done <-chan error) error {
	t.Helper()
	deadline := time.After(2 * time.Minute)
	for {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			return err
		case <-deadline:
			t.Fatal("run did not stop on SIGTERM")
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// reopenClean opens a segment store directory and asserts an interrupted
// run left it sealed (no skipped files) and queryable.
func reopenClean(t *testing.T, dir string) *ingest.SegmentStore {
	t.Helper()
	store, err := ingest.OpenSegmentStore(dir, ingest.SegmentOptions{})
	if err != nil {
		t.Fatalf("reopen %s: %v", dir, err)
	}
	if sk := store.Skipped(); len(sk) != 0 {
		t.Fatalf("%s holds unsealed leftovers after shutdown: %v", dir, sk)
	}
	if store.Totals().Entries == 0 {
		t.Fatalf("%s reopened empty", dir)
	}
	it, err := store.Query(time.Time{}, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	entries, err := ingest.Drain(it)
	if err != nil {
		t.Fatalf("query reopened store: %v", err)
	}
	if len(entries) != store.Totals().Entries {
		t.Fatalf("query returned %d entries, totals say %d", len(entries), store.Totals().Entries)
	}
	return store
}

// TestBsmonInterruptSealsStore kills a bounded run mid-measurement and
// asserts the store reopens sealed and queryable — the crash-consistency
// contract of the shutdown path.
func TestBsmonInterruptSealsStore(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM)
	defer signal.Stop(ch)

	dir := t.TempDir()
	done := startRun([]string{"-out", dir, "-nodes", "60", "-hours", "2000", "-seed", "4", "-rotate", "30m"})
	// Let the world build and at least one run step complete.
	time.Sleep(2 * time.Second)
	if err := signalUntilDone(t, done); err != nil {
		t.Fatalf("interrupted run failed: %v", err)
	}
	for _, mon := range []string{"us", "de"} {
		reopenClean(t, filepath.Join(dir, mon+".segments"))
		// The interrupted path prioritises sealing over post-processing: no
		// flat export should exist for a run this far from completion.
		if _, err := os.Stat(filepath.Join(dir, mon+".trace")); !os.IsNotExist(err) {
			t.Errorf("interrupted run wrote %s.trace", mon)
		}
	}
}

// TestBsmonServeEndToEnd is the live-scrape acceptance test: a -serve
// daemon is scraped for window gauges and report JSON while running, then
// SIGTERMed; the stores must reopen clean and retention must have deleted
// only sealed segments entirely older than the policy horizon.
func TestBsmonServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM)
	defer signal.Stop(ch)

	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	retain := 2 * time.Hour
	done := startRun([]string{
		"-serve", "-out", dir, "-nodes", "60", "-hours", "0", "-seed", "5",
		"-serve-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-rotate", "10m", "-window", "15m", "-windows-keep", "8",
		"-retain", retain.String(), "-maintain-every", "100ms",
		"-compact-run", "2", "-compact-small", "1000000",
		"-step", "5m", "-pace", "1ms",
	})

	// Discover the ephemeral address.
	var addr string
	for i := 0; i < 200 && addr == ""; i++ {
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v", err)
		case <-time.After(100 * time.Millisecond):
		}
		if blob, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(blob))
		}
	}
	if addr == "" {
		t.Fatal("daemon never wrote -addr-file")
	}
	base := "http://" + addr

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}

	// Poll /metrics until at least two closed windows of the traffic report
	// are published and retention has expired at least one segment.
	var metrics string
	deadline := time.Now().Add(90 * time.Second)
	for {
		metrics = get("/metrics")
		twoWindows := strings.Contains(metrics, `report_window_metric{report="traffic",metric="dedup_entries",window="0"}`) &&
			strings.Contains(metrics, `report_window_metric{report="traffic",metric="dedup_entries",window="1"}`)
		expired := false
		for _, line := range strings.Split(metrics, "\n") {
			if strings.HasPrefix(line, "ingest_retention_expired_segments_total ") &&
				!strings.HasSuffix(line, " 0") {
				expired = true
			}
		}
		if twoWindows && expired {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never published 2 windows + retention (twoWindows=%v expired=%v)", twoWindows, expired)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if !strings.Contains(metrics, `report_window_start_seconds{window="0"}`) {
		t.Error("missing window start gauge")
	}
	if !strings.Contains(metrics, "otrace_spans_total") {
		t.Error("otrace counters not bridged into /metrics")
	}

	// /healthz is OK and /reports carries closed and open windows.
	if health := get("/healthz"); !strings.Contains(health, `"status":"ok"`) {
		t.Fatalf("unhealthy daemon: %s", health)
	}
	var snap report.WindowSnapshot
	if err := json.Unmarshal([]byte(get("/reports")), &snap); err != nil {
		t.Fatalf("bad /reports payload: %v", err)
	}
	if snap.ClosedTotal < 2 || len(snap.Closed) < 2 {
		t.Fatalf("reports show %d closed windows, want >= 2", snap.ClosedTotal)
	}
	if snap.Closed[0].Metrics["traffic"] == nil {
		t.Fatal("closed window missing traffic metrics")
	}

	if err := signalUntilDone(t, done); err != nil {
		t.Fatalf("serve shutdown failed: %v", err)
	}

	// Durable window log: at least the closed windows, one JSON line each.
	f, err := os.Open(filepath.Join(dir, "windows.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var res report.WindowResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad window log line %d: %v", lines, err)
		}
		lines++
	}
	if lines < 2 {
		t.Fatalf("window log holds %d windows, want >= 2", lines)
	}

	// Stores reopen clean, and retention preserved exactly the segments not
	// entirely older than the final horizon (newest data minus -retain).
	for _, mon := range []string{"us", "de"} {
		store := reopenClean(t, filepath.Join(dir, mon+".segments"))
		segs := store.Segments()
		newest := segs[len(segs)-1].Footer.Last
		horizon := newest.Add(-retain)
		for i, seg := range segs {
			if i < len(segs)-1 && seg.Footer.Last.Before(horizon) {
				t.Errorf("%s: segment %d [%s, %s] is entirely older than horizon %s but survived",
					mon, seg.Seq, seg.Footer.First.Format(time.RFC3339), seg.Footer.Last.Format(time.RFC3339),
					horizon.Format(time.RFC3339))
			}
		}
	}
}
