package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bitswapmon/internal/cmdutil"
	"bitswapmon/internal/ingest"
	"bitswapmon/internal/report"
)

// serveConfig is the -serve mode configuration: the shared run flags copied
// from main plus the service-specific knobs bound by bindServeFlags.
type serveConfig struct {
	// Copied from the shared flags by run().
	out    string
	nodes  int
	hours  int
	seed   int64
	rotate time.Duration

	addr     string
	addrFile string

	window  time.Duration
	slide   time.Duration
	keep    int
	reports string

	retain        time.Duration
	compactRun    int
	compactSmall  int
	maintainEvery time.Duration

	step time.Duration
	pace time.Duration
}

// bindServeFlags registers the -serve mode flags on fs and returns the
// struct they fill.
func bindServeFlags(fs *flag.FlagSet) *serveConfig {
	sc := &serveConfig{}
	fs.StringVar(&sc.addr, "serve-addr", "127.0.0.1:9464", "service HTTP address for /metrics, /reports and /healthz (port 0 picks an ephemeral port)")
	fs.StringVar(&sc.addrFile, "addr-file", "", "write the bound HTTP address to this file once listening (lets scripts discover an ephemeral port)")
	fs.DurationVar(&sc.window, "window", time.Hour, "report window width (virtual time)")
	fs.DurationVar(&sc.slide, "window-slide", 0, "window stride; 0 means tumbling (= width), smaller values give sliding windows and must divide the width")
	fs.IntVar(&sc.keep, "windows-keep", 24, "closed windows retained in memory and as report_window_metric recency slots")
	fs.StringVar(&sc.reports, "window-reports", "traffic", "comma-separated registry reports evaluated per window")
	fs.DurationVar(&sc.retain, "retain", 0, "delete raw segments entirely older than this horizon behind the newest data (virtual time; 0 keeps everything)")
	fs.IntVar(&sc.compactRun, "compact-run", 0, "minimum run of small adjacent segments worth merging (0 = default)")
	fs.IntVar(&sc.compactSmall, "compact-small", 0, "segments under this many entries are compactable (0 = default)")
	fs.DurationVar(&sc.maintainEvery, "maintain-every", 2*time.Second, "wall-clock period of compaction/retention passes")
	fs.DurationVar(&sc.step, "step", 15*time.Minute, "virtual time advanced per service loop iteration")
	fs.DurationVar(&sc.pace, "pace", 20*time.Millisecond, "wall-clock sleep between loop iterations (0 runs virtual time as fast as possible)")
	return sc
}

// runServe is the continuous-monitoring daemon: the simulation streams into
// per-monitor segment stores and a unified windowed report driver, a
// Maintainer compacts and expires each store in the background, and one HTTP
// endpoint exposes /metrics, /reports and /healthz. It runs until ctx is
// cancelled (SIGINT/SIGTERM) or, with -hours > 0, until that much virtual
// time has elapsed; shutdown seals every active segment, flushes and
// finalizes the open windows, and runs a final compaction pass.
func runServe(ctx context.Context, sc *serveConfig) error {
	// Telemetry handles resolve at construction time, so instrumentation
	// must be on before any store, driver, or world exists.
	cmdutil.EnableAllMetrics()

	if sc.step <= 0 {
		return fmt.Errorf("-step must be positive")
	}
	if err := os.MkdirAll(sc.out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	w, err := buildWorld(sc.seed, sc.nodes, nil)
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}

	// Durable window retention: every closed window appends one JSON line.
	// Raw segments expire on the -retain horizon; these rolled-up report
	// results are what remains of the expired time range.
	windowLog, err := os.OpenFile(filepath.Join(sc.out, "windows.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("open window log: %w", err)
	}
	defer windowLog.Close()
	logEnc := json.NewEncoder(windowLog)

	var names []string
	for _, name := range strings.Split(sc.reports, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	wd, err := report.NewWindowedDriver(report.WindowOptions{
		Width:   sc.window,
		Slide:   sc.slide,
		Keep:    sc.keep,
		Reports: names,
		Opts: report.Options{
			Geo:        w.Geo,
			GatewayIDs: w.GatewayNodeIDs(),
			Rand:       func() *rand.Rand { return w.Net.NewRand("serve-windows") },
		},
		Dedup:   true,
		OnClose: func(res report.WindowResult) error { return logEnc.Encode(res) },
	})
	if err != nil {
		return err
	}

	// Wiring: every monitor tees its raw stream into its own segment store
	// and into one shared UnifySink, which orders and flags the merged
	// stream (Sec. IV-B) before the windowed driver sees it.
	uni := ingest.NewUnifySink(wd)
	maintainOpts := ingest.MaintainOptions{
		Interval: sc.maintainEvery,
		Compaction: ingest.CompactionPolicy{
			MinRun:       sc.compactRun,
			SmallEntries: sc.compactSmall,
		},
		Retention: ingest.RetentionPolicy{MaxAge: sc.retain},
	}
	stores := make([]*ingest.SegmentStore, len(w.Monitors))
	maintainers := make([]*ingest.Maintainer, len(w.Monitors))
	for i, m := range w.Monitors {
		store, err := openFreshStore(filepath.Join(sc.out, m.Name+".segments"), ingest.SegmentOptions{Rotation: sc.rotate})
		if err != nil {
			return err
		}
		stores[i] = store
		maintainers[i] = ingest.NewMaintainer(store, maintainOpts)
		m.SetSink(ingest.Tee(store, uni))
	}
	defer func() {
		// Whatever goes wrong, stop maintenance before sealing stores so no
		// background pass races the defered Close, then seal.
		for _, mt := range maintainers {
			if mt != nil {
				mt.Close()
			}
		}
		for _, store := range stores {
			store.Close()
		}
	}()

	srv, err := cmdutil.ServeOps(sc.addr, map[string]http.Handler{
		"/reports": reportsHandler(wd),
		"/healthz": healthzHandler(maintainers),
	})
	if err != nil {
		return err
	}
	if srv == nil {
		return fmt.Errorf("-serve needs a non-empty -serve-addr")
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "bsmon: serving on http://%s (/metrics /reports /healthz)\n", srv.Addr())
	if sc.addrFile != "" {
		if err := os.WriteFile(sc.addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}

	// The service loop: advance virtual time one step, optionally pace
	// against the wall clock, check for capture failures, repeat until the
	// signal context cancels or the optional -hours bound is reached.
	bound := time.Duration(sc.hours) * time.Hour
	var elapsed time.Duration
	var pacer *time.Ticker
	if sc.pace > 0 {
		pacer = time.NewTicker(sc.pace)
		defer pacer.Stop()
	}
loop:
	for ctx.Err() == nil && (bound <= 0 || elapsed < bound) {
		step := sc.step
		if bound > 0 {
			if rem := bound - elapsed; rem < step {
				step = rem
			}
		}
		w.Run(step)
		elapsed += step
		for i, m := range w.Monitors {
			if err := m.SinkErr(); err != nil {
				return fmt.Errorf("monitor %s: capture: %w", m.Name, err)
			}
			if err := maintainers[i].Err(); err != nil {
				return fmt.Errorf("monitor %s: maintenance: %w", m.Name, err)
			}
		}
		if pacer != nil {
			select {
			case <-ctx.Done():
				break loop
			case <-pacer.C:
			}
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "bsmon: signal received — shutting down cleanly")
	}

	// Orderly shutdown. Order matters:
	//   1. seal every store (the active segment becomes a sealed, queryable
	//      segment) and surface any latched capture error;
	//   2. flush the unifier's final timestamp batch into the windowed
	//      driver, then finalize the still-open windows (marked partial);
	//   3. close each Maintainer — it runs one final compaction/retention
	//      pass over the now-complete segment set and writes a fresh index.
	for i, m := range w.Monitors {
		if err := stores[i].Close(); err != nil {
			return fmt.Errorf("monitor %s: seal store: %w", m.Name, err)
		}
		if err := m.SinkErr(); err != nil {
			return fmt.Errorf("monitor %s: capture: %w", m.Name, err)
		}
	}
	if err := uni.Flush(); err != nil {
		return fmt.Errorf("unify flush: %w", err)
	}
	results, err := wd.Close()
	if err != nil {
		return err
	}
	var totalStats ingest.MaintainStats
	for i, mt := range maintainers {
		if err := mt.Close(); err != nil {
			return fmt.Errorf("monitor %s: final maintenance: %w", w.Monitors[i].Name, err)
		}
		totalStats = totalStats.Add(mt.Stats())
		maintainers[i] = nil // the deferred cleanup must not double-close
	}
	fmt.Printf("bsmon: served %s of virtual time, %d windows closed (%d retained), maintenance: %+v\n",
		elapsed, wd.Snapshot().ClosedTotal, len(results), totalStats)
	return nil
}

// reportsHandler serves the windowed driver's state as JSON: retained
// closed windows plus live numbers for the still-open ones.
func reportsHandler(wd *report.WindowedDriver) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(wd.Snapshot())
	})
}

// healthzHandler reports service health: 200 with maintenance totals while
// every background loop is clean, 500 with the first error otherwise. It
// deliberately reads only mutex-guarded state — monitor sink errors are
// owned by the simulation loop and surface through it.
func healthzHandler(maintainers []*ingest.Maintainer) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		var stats ingest.MaintainStats
		for _, mt := range maintainers {
			if err := mt.Err(); err != nil {
				http.Error(rw, err.Error(), http.StatusInternalServerError)
				return
			}
			stats = stats.Add(mt.Stats())
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(map[string]any{"status": "ok", "maintenance": stats})
	})
}
