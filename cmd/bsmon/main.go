// Command bsmon runs a monitored scenario and streams each monitor's trace
// to disk while the simulation runs, mirroring the paper's collection
// infrastructure: entries flow through an ingest pipeline (segment store +
// online statistics) instead of accumulating in RAM, so resident memory is
// bounded by the segment rotation window, not the measurement length.
//
// Usage:
//
//	bsmon -out DIR [-nodes N] [-hours H] [-seed N] [-rotate DUR]
//	      [-trace-out FILE] [-trace-sample F] [-metrics-addr ADDR]
//
// Output per monitor M:
//
//	DIR/M.segments/NNNNNN.seg — time-partitioned compressed segments with
//	                            footers (the queryable store)
//	DIR/M.trace               — flat binary trace (compatibility export,
//	                            produced disk-to-disk from the segments)
//	DIR/M.csv                 — CSV export (with -csv)
//
// Both modes shut down cleanly on SIGINT/SIGTERM: the active segment is
// sealed before exit, so an interrupted store always reopens queryable.
//
// With -serve, bsmon becomes a continuous-monitoring daemon instead of a
// bounded run: the simulation streams indefinitely, rolling windows of
// registry reports are evaluated live, segment stores are compacted and
// expired in the background, and an HTTP endpoint serves /metrics, /reports
// and /healthz. See serve.go.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"bitswapmon/internal/cmdutil"
	"bitswapmon/internal/ingest"
	"bitswapmon/internal/otrace"
	"bitswapmon/internal/report"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/trace"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsmon:", err)
		os.Exit(1)
	}
}

// runStep is the virtual-time chunk the run loop advances between shutdown
// checks: small enough that a signal turns into a sealed store promptly,
// large enough that loop overhead is negligible.
const runStep = 15 * time.Minute

func run(args []string) error {
	fs := flag.NewFlagSet("bsmon", flag.ContinueOnError)
	outDir := fs.String("out", "traces", "output directory")
	nodes := fs.Int("nodes", 400, "population size")
	hours := fs.Int("hours", 24, "measurement window in virtual hours (0 with -serve: run until signalled)")
	seed := fs.Int64("seed", 1, "simulation seed")
	csv := fs.Bool("csv", true, "also write CSV exports")
	flat := fs.Bool("flat", true, "also write flat .trace compatibility exports")
	rotate := fs.Duration("rotate", time.Hour, "segment rotation window (virtual time)")
	traceOut := fs.String("trace-out", "", "record causal request traces and write Chrome trace-event JSON (Perfetto-loadable) plus a .jsonl sidecar to this path")
	traceSample := fs.Float64("trace-sample", 1, "deterministic trace head-sampling rate in [0,1] (with -trace-out)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :9090) and enable instrumentation")

	serve := fs.Bool("serve", false, "run as a continuous-monitoring service: rolling-window reports, retention/compaction, HTTP endpoints")
	sc := bindServeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// SIGINT/SIGTERM turn into context cancellation: the run loop stops at
	// the next step boundary and every store seals its active segment, so a
	// killed bsmon never leaves an unsealed (bsanalyze-rejected) segment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *serve {
		sc.out = *outDir
		sc.nodes = *nodes
		sc.hours = *hours
		sc.seed = *seed
		sc.rotate = *rotate
		return runServe(ctx, sc)
	}
	if *hours <= 0 {
		return fmt.Errorf("-hours must be positive without -serve")
	}

	var tracer *otrace.Tracer
	if *traceOut != "" {
		if *traceSample < 0 || *traceSample > 1 {
			return fmt.Errorf("-trace-sample %v out of [0,1]", *traceSample)
		}
		tracer = otrace.New(otrace.Config{Sample: *traceSample, Seed: *seed})
	}
	srv, err := cmdutil.ServeMetrics(*metricsAddr)
	if err != nil {
		return err
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "bsmon: serving metrics on http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	w, err := buildWorld(*seed, *nodes, tracer)
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}

	// Capture path: every monitor streams into a segment store plus a
	// one-pass aggregator. Nothing retains the full trace in memory.
	stores := make([]*ingest.SegmentStore, len(w.Monitors))
	stats := make([]*ingest.OnlineStats, len(w.Monitors))
	for i, m := range w.Monitors {
		store, err := openFreshStore(filepath.Join(*outDir, m.Name+".segments"), ingest.SegmentOptions{Rotation: *rotate})
		if err != nil {
			return err
		}
		stores[i] = store
		stats[i] = ingest.NewOnlineStats(ingest.StatsOptions{Bucket: *rotate})
		m.SetSink(ingest.Tee(store, stats[i]))
	}

	// Whatever goes wrong below, seal every store: an unclosed store loses
	// its active segment (up to a whole rotation window of entries).
	defer func() {
		for _, store := range stores {
			store.Close()
		}
	}()

	fmt.Printf("running %d nodes for %dh of virtual time...\n", *nodes, *hours)
	interrupted := runFor(ctx, w, time.Duration(*hours)*time.Hour)
	if interrupted {
		fmt.Fprintln(os.Stderr, "bsmon: interrupted — sealing active segments")
	}

	for i, m := range w.Monitors {
		if err := stores[i].Close(); err != nil {
			return fmt.Errorf("monitor %s: seal store: %w", m.Name, err)
		}
		if err := m.SinkErr(); err != nil {
			return fmt.Errorf("monitor %s: capture: %w", m.Name, err)
		}
		tot := stores[i].Totals()
		fmt.Printf("monitor %s: %d entries in %d segments (~%.0f peers, ~%.0f CIDs) -> %s\n",
			m.Name, tot.Entries, len(stores[i].Segments()),
			stats[i].DistinctPeers(), stats[i].DistinctCIDs(),
			filepath.Join(*outDir, m.Name+".segments"))

		// An interrupted run skips the flat/CSV exports: the priority is a
		// sealed, queryable store on disk, not a full post-processing pass.
		if interrupted {
			continue
		}
		if *flat {
			if err := exportFlat(stores[i], filepath.Join(*outDir, m.Name+".trace")); err != nil {
				return err
			}
		}
		if *csv {
			if err := exportCSV(stores[i], filepath.Join(*outDir, m.Name+".csv")); err != nil {
				return err
			}
		}
	}
	if tracer != nil && !interrupted {
		fmt.Println(report.BreakdownFromSpans(tracer.Spans(), tracer.Dropped()).Render())
	}
	return cmdutil.ExportTrace("bsmon", *traceOut, tracer)
}

// buildWorld constructs the standard two-monitor scenario both modes run.
func buildWorld(seed int64, nodes int, tracer *otrace.Tracer) (*workload.World, error) {
	return workload.Build(workload.Config{
		Seed:  seed,
		Nodes: nodes,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
		Tracer: tracer,
	})
}

// openFreshStore opens a segment store and refuses one already holding
// data: virtual time restarts every run, so appending a second run would
// interleave out-of-order streams and corrupt downstream unification —
// and unsealed leftovers from a crashed run are treated the same way.
func openFreshStore(dir string, opts ingest.SegmentOptions) (*ingest.SegmentStore, error) {
	store, err := ingest.OpenSegmentStore(dir, opts)
	if err != nil {
		return nil, err
	}
	if tot := store.Totals(); tot.Entries > 0 || len(store.Skipped()) > 0 {
		return nil, fmt.Errorf("segment store %s already holds data from a previous run (%d sealed entries, %d unsealed files); use a fresh -out directory",
			dir, tot.Entries, len(store.Skipped()))
	}
	return store, nil
}

// runFor advances the simulation in runStep chunks until total virtual time
// has elapsed or ctx is cancelled, reporting whether it was interrupted.
func runFor(ctx context.Context, w *workload.World, total time.Duration) bool {
	for elapsed := time.Duration(0); elapsed < total; elapsed += runStep {
		if ctx.Err() != nil {
			return true
		}
		step := runStep
		if rem := total - elapsed; rem < step {
			step = rem
		}
		w.Run(step)
	}
	return ctx.Err() != nil
}

// exportFlat streams the store into a flat binary trace file, disk to disk.
func exportFlat(store *ingest.SegmentStore, path string) error {
	it, err := store.Query(time.Time{}, time.Time{}, nil)
	if err != nil {
		return err
	}
	defer it.Close()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	if _, err := ingest.Copy(tw, it); err != nil {
		return fmt.Errorf("export %s: %w", path, err)
	}
	if err := tw.Close(); err != nil {
		return fmt.Errorf("finalize trace: %w", err)
	}
	return f.Close()
}

// exportCSV streams the store into a CSV file, disk to disk.
func exportCSV(store *ingest.SegmentStore, path string) error {
	it, err := store.Query(time.Time{}, time.Time{}, nil)
	if err != nil {
		return err
	}
	defer it.Close()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	cw := trace.NewCSVWriter(f)
	if _, err := ingest.Copy(cw, it); err != nil {
		return fmt.Errorf("export %s: %w", path, err)
	}
	if err := cw.Close(); err != nil {
		return err
	}
	return f.Close()
}
