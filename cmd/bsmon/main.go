// Command bsmon runs a monitored scenario and streams each monitor's trace
// to disk while the simulation runs, mirroring the paper's collection
// infrastructure: entries flow through an ingest pipeline (segment store +
// online statistics) instead of accumulating in RAM, so resident memory is
// bounded by the segment rotation window, not the measurement length.
//
// Usage:
//
//	bsmon -out DIR [-nodes N] [-hours H] [-seed N] [-rotate DUR]
//	      [-trace-out FILE] [-trace-sample F] [-metrics-addr ADDR]
//
// Output per monitor M:
//
//	DIR/M.segments/NNNNNN.seg — time-partitioned compressed segments with
//	                            footers (the queryable store)
//	DIR/M.trace               — flat binary trace (compatibility export,
//	                            produced disk-to-disk from the segments)
//	DIR/M.csv                 — CSV export (with -csv)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bitswapmon/internal/cmdutil"
	"bitswapmon/internal/ingest"
	"bitswapmon/internal/otrace"
	"bitswapmon/internal/report"
	"bitswapmon/internal/simnet"
	"bitswapmon/internal/trace"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsmon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bsmon", flag.ContinueOnError)
	outDir := fs.String("out", "traces", "output directory")
	nodes := fs.Int("nodes", 400, "population size")
	hours := fs.Int("hours", 24, "measurement window in virtual hours")
	seed := fs.Int64("seed", 1, "simulation seed")
	csv := fs.Bool("csv", true, "also write CSV exports")
	flat := fs.Bool("flat", true, "also write flat .trace compatibility exports")
	rotate := fs.Duration("rotate", time.Hour, "segment rotation window (virtual time)")
	traceOut := fs.String("trace-out", "", "record causal request traces and write Chrome trace-event JSON (Perfetto-loadable) plus a .jsonl sidecar to this path")
	traceSample := fs.Float64("trace-sample", 1, "deterministic trace head-sampling rate in [0,1] (with -trace-out)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :9090) and enable instrumentation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tracer *otrace.Tracer
	if *traceOut != "" {
		if *traceSample < 0 || *traceSample > 1 {
			return fmt.Errorf("-trace-sample %v out of [0,1]", *traceSample)
		}
		tracer = otrace.New(otrace.Config{Sample: *traceSample, Seed: *seed})
	}
	srv, err := cmdutil.ServeMetrics(*metricsAddr)
	if err != nil {
		return err
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "bsmon: serving metrics on http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	w, err := workload.Build(workload.Config{
		Seed:  *seed,
		Nodes: *nodes,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
		Tracer: tracer,
	})
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}

	// Capture path: every monitor streams into a segment store plus a
	// one-pass aggregator. Nothing retains the full trace in memory.
	stores := make([]*ingest.SegmentStore, len(w.Monitors))
	stats := make([]*ingest.OnlineStats, len(w.Monitors))
	for i, m := range w.Monitors {
		store, err := ingest.OpenSegmentStore(filepath.Join(*outDir, m.Name+".segments"), ingest.SegmentOptions{Rotation: *rotate})
		if err != nil {
			return err
		}
		// Virtual time restarts every run, so appending a second run to an
		// existing store would interleave out-of-order streams and corrupt
		// downstream unification. Refuse rather than mingle runs — and
		// treat unsealed leftovers from a crashed run the same way.
		if tot := store.Totals(); tot.Entries > 0 || len(store.Skipped()) > 0 {
			return fmt.Errorf("segment store %s already holds data from a previous run (%d sealed entries, %d unsealed files); use a fresh -out directory",
				filepath.Join(*outDir, m.Name+".segments"), tot.Entries, len(store.Skipped()))
		}
		stores[i] = store
		stats[i] = ingest.NewOnlineStats(ingest.StatsOptions{Bucket: *rotate})
		m.SetSink(ingest.Tee(store, stats[i]))
	}

	// Whatever goes wrong below, seal every store: an unclosed store loses
	// its active segment (up to a whole rotation window of entries).
	defer func() {
		for _, store := range stores {
			store.Close()
		}
	}()

	fmt.Printf("running %d nodes for %dh of virtual time...\n", *nodes, *hours)
	w.Run(time.Duration(*hours) * time.Hour)

	for i, m := range w.Monitors {
		if err := stores[i].Close(); err != nil {
			return fmt.Errorf("monitor %s: seal store: %w", m.Name, err)
		}
		if err := m.SinkErr(); err != nil {
			return fmt.Errorf("monitor %s: capture: %w", m.Name, err)
		}
		tot := stores[i].Totals()
		fmt.Printf("monitor %s: %d entries in %d segments (~%.0f peers, ~%.0f CIDs) -> %s\n",
			m.Name, tot.Entries, len(stores[i].Segments()),
			stats[i].DistinctPeers(), stats[i].DistinctCIDs(),
			filepath.Join(*outDir, m.Name+".segments"))

		if *flat {
			if err := exportFlat(stores[i], filepath.Join(*outDir, m.Name+".trace")); err != nil {
				return err
			}
		}
		if *csv {
			if err := exportCSV(stores[i], filepath.Join(*outDir, m.Name+".csv")); err != nil {
				return err
			}
		}
	}
	if tracer != nil {
		fmt.Println(report.BreakdownFromSpans(tracer.Spans(), tracer.Dropped()).Render())
	}
	return cmdutil.ExportTrace("bsmon", *traceOut, tracer)
}

// exportFlat streams the store into a flat binary trace file, disk to disk.
func exportFlat(store *ingest.SegmentStore, path string) error {
	it, err := store.Query(time.Time{}, time.Time{}, nil)
	if err != nil {
		return err
	}
	defer it.Close()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	if _, err := ingest.Copy(tw, it); err != nil {
		return fmt.Errorf("export %s: %w", path, err)
	}
	if err := tw.Close(); err != nil {
		return fmt.Errorf("finalize trace: %w", err)
	}
	return f.Close()
}

// exportCSV streams the store into a CSV file, disk to disk.
func exportCSV(store *ingest.SegmentStore, path string) error {
	it, err := store.Query(time.Time{}, time.Time{}, nil)
	if err != nil {
		return err
	}
	defer it.Close()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	cw := trace.NewCSVWriter(f)
	if _, err := ingest.Copy(cw, it); err != nil {
		return fmt.Errorf("export %s: %w", path, err)
	}
	if err := cw.Close(); err != nil {
		return err
	}
	return f.Close()
}
