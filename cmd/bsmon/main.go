// Command bsmon runs a monitored scenario and writes each monitor's trace
// to a binary trace file, mirroring the paper's collection infrastructure.
//
// Usage:
//
//	bsmon -out DIR [-nodes N] [-hours H] [-seed N]
//
// Output: DIR/<monitor>.trace (binary, gzip) and DIR/<monitor>.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bitswapmon/internal/simnet"
	"bitswapmon/internal/trace"
	"bitswapmon/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bsmon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bsmon", flag.ContinueOnError)
	outDir := fs.String("out", "traces", "output directory")
	nodes := fs.Int("nodes", 400, "population size")
	hours := fs.Int("hours", 24, "measurement window in virtual hours")
	seed := fs.Int64("seed", 1, "simulation seed")
	csv := fs.Bool("csv", true, "also write CSV exports")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	w, err := workload.Build(workload.Config{
		Seed:  *seed,
		Nodes: *nodes,
		Monitors: []workload.MonitorSpec{
			{Name: "us", Region: simnet.RegionUS},
			{Name: "de", Region: simnet.RegionDE},
		},
	})
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}

	fmt.Printf("running %d nodes for %dh of virtual time...\n", *nodes, *hours)
	w.Run(time.Duration(*hours) * time.Hour)

	for _, m := range w.Monitors {
		entries := m.Trace()
		path := filepath.Join(*outDir, m.Name+".trace")
		if err := writeTrace(path, entries); err != nil {
			return err
		}
		fmt.Printf("monitor %s: %d entries -> %s\n", m.Name, len(entries), path)
		if *csv {
			csvPath := filepath.Join(*outDir, m.Name+".csv")
			if err := writeCSV(csvPath, entries); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeTrace(path string, entries []trace.Entry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := tw.Write(e); err != nil {
			return fmt.Errorf("write entry: %w", err)
		}
	}
	if err := tw.Close(); err != nil {
		return fmt.Errorf("finalize trace: %w", err)
	}
	return f.Close()
}

func writeCSV(path string, entries []trace.Entry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, entries); err != nil {
		return err
	}
	return f.Close()
}
