package main

import (
	"os"
	"path/filepath"
	"testing"

	"bitswapmon/internal/trace"
)

func TestBsmonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-nodes", "80", "-hours", "2", "-seed", "3"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"us.trace", "de.trace", "us.csv", "de.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing output %s: %v", name, err)
		}
	}
	// The binary trace must be readable and non-empty.
	f, err := os.Open(filepath.Join(dir, "us.trace"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("empty trace written")
	}
}

func TestBsmonBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
}
