package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bitswapmon/internal/ingest"
	"bitswapmon/internal/trace"
)

func TestBsmonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-nodes", "80", "-hours", "2", "-seed", "3", "-rotate", "30m"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"us.trace", "de.trace", "us.csv", "de.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing output %s: %v", name, err)
		}
	}
	// The binary trace must be readable and non-empty.
	f, err := os.Open(filepath.Join(dir, "us.trace"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("empty trace written")
	}

	// The segment store must hold the same entries, partitioned by time:
	// 2 virtual hours at 30m rotation means multiple sealed segments.
	store, err := ingest.OpenSegmentStore(filepath.Join(dir, "us.segments"), ingest.SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tot := store.Totals(); tot.Entries != len(entries) {
		t.Errorf("segment totals = %d entries, flat trace has %d", tot.Entries, len(entries))
	}
	if segs := store.Segments(); len(segs) < 2 {
		t.Errorf("segments = %d, want >= 2 (rotation not happening)", len(segs))
	}
	it, err := store.Query(time.Time{}, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fromSegs, err := ingest.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if fromSegs[i] != entries[i] {
			t.Fatalf("segment/flat divergence at entry %d", i)
		}
	}
}

func TestBsmonBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
}
