package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testSweepJSON = `{
  "version": 1,
  "name": "cli-test",
  "base": {
    "version": 1,
    "nodes": 18,
    "bootstrap_servers": 5,
    "catalog_items": 60,
    "active_frac": 0.9,
    "mean_requests_per_hour": 60,
    "monitors": [
      {"name": "us", "region": "US"},
      {"name": "de", "region": "DE"}
    ],
    "joint": {"both": 0.8, "only_a": 0.1, "only_b": 0.1},
    "gateways": [],
    "warmup": "5m",
    "window": "20m",
    "sample_every": "10m"
  },
  "axes": [{"param": "nodes", "values": [14, 20]}],
  "seeds": {"base": 42, "replicates": 1}
}
`

func TestBssweepRunAndReport(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(specPath, []byte(testSweepJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(dir, "root")

	if err := run([]string{"run", "-spec", specPath, "-dry-run"}); err != nil {
		t.Fatalf("dry-run: %v", err)
	}
	if err := run([]string{"run", "-spec", specPath, "-root", root, "-workers", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// resume over a finished sweep is a no-op, not an error.
	if err := run([]string{"resume", "-root", root}); err != nil {
		t.Fatalf("resume: %v", err)
	}

	csvPath := filepath.Join(dir, "out.csv")
	if err := run([]string{"report", "-root", root, "-csv", csvPath}); err != nil {
		t.Fatalf("report: %v", err)
	}
	a, err := os.ReadFile(csvPath)
	if err != nil || len(a) == 0 {
		t.Fatalf("no csv written: %v", err)
	}
	// Reports are deterministic across invocations.
	if err := run([]string{"report", "-root", root, "-csv", csvPath}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("report CSV differs between invocations")
	}

	if err := run([]string{"report", "-root", root, "-rows", "nodes", "-metric", "entries"}); err != nil {
		t.Fatalf("table report: %v", err)
	}
	if err := run([]string{"params"}); err != nil {
		t.Fatal(err)
	}
}

func TestBssweepErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"run"}); err == nil {
		t.Error("run without -spec accepted")
	}
	if err := run([]string{"resume", "-root", filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Error("resume of a rootless directory accepted")
	}
	if err := run([]string{"report", "-root", t.TempDir()}); err == nil {
		t.Error("report over an empty root accepted")
	}
	if err := run([]string{"report", "-root", t.TempDir(), "-rows", "nodes"}); err == nil {
		t.Error("table report without -metric accepted")
	}
}
