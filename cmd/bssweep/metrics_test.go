package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// metricsSweepJSON drives four single-worker sharded-engine runs: enough
// wall time after the first run completes for the scraper to observe every
// subsystem's metrics while the sweep is still executing. The sharded
// engine matters — the serial reference engine is not obs-instrumented.
const metricsSweepJSON = `{
  "version": 1,
  "name": "metrics-e2e",
  "base": {
    "version": 1,
    "nodes": 18,
    "bootstrap_servers": 5,
    "catalog_items": 60,
    "active_frac": 0.9,
    "mean_requests_per_hour": 60,
    "monitors": [
      {"name": "us", "region": "US"},
      {"name": "de", "region": "DE"}
    ],
    "joint": {"both": 0.8, "only_a": 0.1, "only_b": 0.1},
    "gateways": [],
    "warmup": "5m",
    "window": "6h",
    "sample_every": "30m",
    "engine": "sharded",
    "shards": 2
  },
  "axes": [{"param": "nodes", "values": [14, 16, 18, 20]}],
  "seeds": {"base": 42, "replicates": 1}
}
`

// requiredSamples is one live sample per instrumented subsystem, the
// acceptance bar for the /metrics endpoint: a scrape during a sweep shows
// the engine, ingest pipeline, orchestrator, and report driver all working.
var requiredSamples = []string{
	`engine_shard_events_total{shard="0"}`,
	"ingest_entries_total",
	"sweep_runs_completed_total",
	`report_entries_observed_total{report="summary"}`,
}

var promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)

// validPrometheusText checks every non-comment line parses as a sample.
func validPrometheusText(t *testing.T, body string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
}

// TestBssweepMetricsEndpoint is the end-to-end acceptance test: bssweep run
// with -metrics-addr serves valid Prometheus text during the live sweep,
// including at least one metric from each of engine, ingest, sweep, and
// report.
func TestBssweepMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(specPath, []byte(metricsSweepJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(dir, "root")

	addrCh := make(chan string, 1)
	oldServed := metricsServed
	metricsServed = func(addr string) { addrCh <- addr }
	defer func() { metricsServed = oldServed }()

	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"run", "-spec", specPath, "-root", root,
			"-workers", "1", "-metrics-addr", "127.0.0.1:0", "-progress=false"})
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("run finished before serving metrics: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("metrics endpoint never came up")
	}

	scrape := func() (string, error) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			return "", fmt.Errorf("content-type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	hasAll := func(body string) bool {
		for _, s := range requiredSamples {
			if !strings.Contains(body, s) {
				return false
			}
		}
		return true
	}

	// Poll the live endpoint until one scrape carries samples from all four
	// subsystems (everything is live once the first of the four runs has
	// been summarized), then validate that scrape's exposition format.
	var live string
	deadline := time.After(3 * time.Minute)
polling:
	for {
		if body, err := scrape(); err == nil && hasAll(body) {
			live = body
			break
		}
		select {
		case err := <-runErr:
			// The sweep finished before a complete scrape: the endpoint is
			// already closed, so the run was simply too fast — fail with
			// what the last state would have been.
			if err != nil {
				t.Fatalf("sweep failed: %v", err)
			}
			t.Fatal("sweep finished before a scrape saw all four subsystems")
		case <-deadline:
			break polling
		case <-time.After(10 * time.Millisecond):
		}
	}
	if live == "" {
		t.Fatal("no scrape carried samples from all four subsystems")
	}
	validPrometheusText(t, live)
	for _, s := range requiredSamples {
		if !strings.Contains(live, s) {
			t.Errorf("live scrape missing %s", s)
		}
	}

	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}
