// Command bssweep runs whole experiment campaigns: families of simulation
// runs expanded from a declarative sweep spec, executed across a bounded
// worker pool, with durable per-run results and resumable progress.
//
// Usage:
//
//	bssweep run -spec sweep.json -root DIR [-workers N] [-dry-run]
//	bssweep resume -root DIR [-workers N]
//	bssweep report -root DIR [-metric M -rows PARAM [-cols PARAM]] [-csv FILE]
//	bssweep params
//
// run expands the sweep (cartesian axes × explicit cases × seed
// replicates) and executes every run that the root's manifest does not
// already record as done — so re-invoking run (or resume, which reads the
// spec pinned in the root) after a crash or Ctrl-C picks up where the
// sweep left off without re-executing completed runs. Each run streams its
// monitor traces into per-run segment stores under DIR/runs/<run-id>/ and
// leaves a summary.json of comparison metrics.
//
// report joins the completed runs' summaries — never the raw traces — into
// a long-form CSV (default) or, with -rows/-cols/-metric, a comparison
// table such as gateway traffic share vs. population × churn. Report
// output is deterministic: the same completed sweep produces the same
// bytes on every invocation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"bitswapmon/internal/analysis"
	"bitswapmon/internal/report"
	"bitswapmon/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bssweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: bssweep run|resume|report|params ...")
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "resume":
		return cmdResume(args[1:])
	case "report":
		return cmdReport(args[1:])
	case "params":
		return cmdParams()
	default:
		return fmt.Errorf("unknown subcommand %q (want run, resume, report or params)", args[0])
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("bssweep run", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec file (JSON)")
	root := fs.String("root", "", "sweep root directory (created if absent)")
	workers := fs.Int("workers", 4, "concurrent runs")
	dryRun := fs.Bool("dry-run", false, "list the expanded runs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("run needs -spec")
	}
	sw, err := sweep.LoadSweep(*specPath)
	if err != nil {
		return err
	}
	if *dryRun {
		runs, err := sweep.Expand(sw)
		if err != nil {
			return err
		}
		fmt.Printf("sweep %q expands to %d runs:\n", sw.Name, len(runs))
		for _, r := range runs {
			fmt.Printf("  %s\n", r.ID)
		}
		return nil
	}
	if *root == "" {
		return fmt.Errorf("run needs -root")
	}
	return orchestrate(*root, sw, *workers)
}

func cmdResume(args []string) error {
	fs := flag.NewFlagSet("bssweep resume", flag.ContinueOnError)
	root := fs.String("root", "", "sweep root directory holding a pinned sweep.json")
	workers := fs.Int("workers", 4, "concurrent runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" {
		return fmt.Errorf("resume needs -root")
	}
	sw, err := sweep.LoadRoot(*root)
	if err != nil {
		return err
	}
	return orchestrate(*root, sw, *workers)
}

func orchestrate(root string, sw sweep.SweepSpec, workers int) error {
	// Ctrl-C cancels cleanly: in-flight runs finish and are recorded, so
	// the next invocation resumes instead of redoing them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := sweep.RunSweep(ctx, root, sw, sweep.Options{
		Workers: workers,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "bssweep: "+format+"\n", args...)
		},
	})
	if res != nil {
		fmt.Printf("sweep %q: %d runs total, %d executed, %d resumed (skipped), %d failed\n",
			sw.Name, res.Total, res.Executed, res.Skipped, res.Failed)
	}
	return err
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("bssweep report", flag.ContinueOnError)
	root := fs.String("root", "", "sweep root directory")
	metric := fs.String("metric", "", "metric for the comparison table (see bssweep params)")
	rows := fs.String("rows", "", "sweep parameter on table rows")
	cols := fs.String("cols", "", "sweep parameter on table columns (optional)")
	csvPath := fs.String("csv", "", "also write the CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" {
		return fmt.Errorf("report needs -root")
	}
	recs, err := sweep.LoadSummaries(*root)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no completed runs in %s (run or resume the sweep first)", *root)
	}
	entries, err := sweep.LoadManifest(*root)
	if err != nil {
		return err
	}
	failed := 0
	for _, e := range entries {
		if e.Status == sweep.StatusFailed {
			failed++
			fmt.Fprintf(os.Stderr, "bssweep: warning: run %s failed: %s\n", e.RunID, e.Error)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bssweep: warning: %d failed runs excluded from the report; resume to retry them\n", failed)
	}

	var csv string
	if *rows != "" || *metric != "" {
		if *rows == "" || *metric == "" {
			return fmt.Errorf("comparison tables need both -rows and -metric")
		}
		table, err := analysis.ComputeSweepTable(recs, *rows, *cols, *metric)
		if err != nil {
			return err
		}
		fmt.Print(table.Render())
		csv = table.CSV()
	} else {
		csv = analysis.SweepCSV(recs)
		fmt.Print(csv)
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Fprintf(os.Stderr, "bssweep: wrote %s\n", *csvPath)
	}
	return nil
}

func cmdParams() error {
	fmt.Println("sweepable parameters (axis/case keys):")
	for _, p := range sweep.KnownParams() {
		fmt.Printf("  %-26s %s\n", p, sweep.ParamDoc(p))
	}
	fmt.Println("\nreport metrics:")
	fmt.Printf("  %s\n", strings.Join(analysis.SweepMetrics(), ", "))
	fmt.Println("  coverage:<monitor>")
	fmt.Printf("  <report>:<metric> for any extra report a spec requests (registered: %s)\n",
		strings.Join(report.Names(), ", "))
	return nil
}
