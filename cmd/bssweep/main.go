// Command bssweep runs whole experiment campaigns: families of simulation
// runs expanded from a declarative sweep spec, executed across a bounded
// worker pool, with durable per-run results and resumable progress.
//
// Usage:
//
//	bssweep run -spec sweep.json -root DIR [-workers N] [-dry-run]
//	            [-trace] [-trace-sample F]
//	            [-metrics-addr ADDR] [-progress] [-cpuprofile FILE] [-memprofile FILE]
//	bssweep resume -root DIR [-workers N] [same operational flags as run]
//	bssweep report -root DIR [-metric M -rows PARAM [-cols PARAM]] [-csv FILE]
//	bssweep params
//
// run expands the sweep (cartesian axes × explicit cases × seed
// replicates) and executes every run that the root's manifest does not
// already record as done — so re-invoking run (or resume, which reads the
// spec pinned in the root) after a crash or Ctrl-C picks up where the
// sweep left off without re-executing completed runs. Each run streams its
// monitor traces into per-run segment stores under DIR/runs/<run-id>/ and
// leaves a summary.json of comparison metrics.
//
// report joins the completed runs' summaries — never the raw traces — into
// a long-form CSV (default) or, with -rows/-cols/-metric, a comparison
// table such as gateway traffic share vs. population × churn. Report
// output is deterministic: the same completed sweep produces the same
// bytes on every invocation.
//
// While a sweep executes, -metrics-addr serves live Prometheus metrics and
// /debug/pprof, and -progress (default on when stderr is a terminal) prints
// a periodic progress line with an ETA, both fed by the same sweep
// instrumentation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"bitswapmon/internal/analysis"
	"bitswapmon/internal/cmdutil"
	"bitswapmon/internal/obs"
	"bitswapmon/internal/report"
	"bitswapmon/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bssweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: bssweep run|resume|report|params ...")
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "resume":
		return cmdResume(args[1:])
	case "report":
		return cmdReport(args[1:])
	case "params":
		return cmdParams()
	default:
		return fmt.Errorf("unknown subcommand %q (want run, resume, report or params)", args[0])
	}
}

// opsFlags is the operational flag set shared by run and resume: the live
// metrics endpoint, the progress line, and the profile pair.
type opsFlags struct {
	metricsAddr string
	progress    bool
	cpuprofile  string
	memprofile  string
}

func addOpsFlags(fs *flag.FlagSet) *opsFlags {
	o := &opsFlags{}
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :9090) and enable instrumentation")
	fs.BoolVar(&o.progress, "progress", stderrIsTTY(), "print a periodic progress line to stderr")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	return o
}

func stderrIsTTY() bool {
	st, err := os.Stderr.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("bssweep run", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec file (JSON)")
	root := fs.String("root", "", "sweep root directory (created if absent)")
	workers := fs.Int("workers", 4, "concurrent runs")
	dryRun := fs.Bool("dry-run", false, "list the expanded runs and exit")
	traceRuns := fs.Bool("trace", false, "enable causal request tracing in every run (writes trace.json + .jsonl into each run directory)")
	traceSample := fs.Float64("trace-sample", 1, "deterministic trace head-sampling rate in [0,1] (with -trace)")
	ops := addOpsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("run needs -spec")
	}
	sw, err := sweep.LoadSweep(*specPath)
	if err != nil {
		return err
	}
	if *traceRuns {
		sw.Base.Trace = true
		sw.Base.TraceSample = *traceSample
	}
	if *dryRun {
		runs, err := sweep.Expand(sw)
		if err != nil {
			return err
		}
		fmt.Printf("sweep %q expands to %d runs:\n", sw.Name, len(runs))
		for _, r := range runs {
			fmt.Printf("  %s\n", r.ID)
		}
		return nil
	}
	if *root == "" {
		return fmt.Errorf("run needs -root")
	}
	return orchestrate(*root, sw, *workers, ops)
}

func cmdResume(args []string) error {
	fs := flag.NewFlagSet("bssweep resume", flag.ContinueOnError)
	root := fs.String("root", "", "sweep root directory holding a pinned sweep.json")
	workers := fs.Int("workers", 4, "concurrent runs")
	ops := addOpsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" {
		return fmt.Errorf("resume needs -root")
	}
	sw, err := sweep.LoadRoot(*root)
	if err != nil {
		return err
	}
	return orchestrate(*root, sw, *workers, ops)
}

// metricsServed is a test seam: the e2e test overrides it to learn the
// ephemeral address -metrics-addr=:0 bound.
var metricsServed = func(addr string) {}

func orchestrate(root string, sw sweep.SweepSpec, workers int, ops *opsFlags) error {
	srv, err := cmdutil.ServeMetrics(ops.metricsAddr)
	if err != nil {
		return err
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "bssweep: serving metrics on http://%s/metrics\n", srv.Addr())
		metricsServed(srv.Addr())
		defer srv.Close()
	}
	prof, err := cmdutil.StartProfiles(ops.cpuprofile, ops.memprofile)
	if err != nil {
		return err
	}
	if ops.progress {
		// The progress line reads the sweep counters back from the obs
		// registry, so instrumentation must be on even without an endpoint.
		sweep.EnableMetrics(nil)
	}

	// Ctrl-C cancels cleanly: in-flight runs finish and are recorded, so
	// the next invocation resumes instead of redoing them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var stopProgress func()
	if ops.progress {
		stopProgress = startProgress(os.Stderr, 2*time.Second)
	}
	res, err := sweep.RunSweep(ctx, root, sw, sweep.Options{
		Workers: workers,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "bssweep: "+format+"\n", args...)
		},
	})
	if stopProgress != nil {
		stopProgress()
	}
	if res != nil {
		fmt.Printf("sweep %q: %d runs total, %d executed, %d resumed (skipped), %d failed\n",
			sw.Name, res.Total, res.Executed, res.Skipped, res.Failed)
	}
	if perr := prof.Stop(); err == nil {
		err = perr
	}
	return err
}

// startProgress prints a progress line to w every interval, driven by the
// sweep metrics (runs done/total, failures, elapsed, ETA). The returned stop
// function prints one final line and is idempotent.
func startProgress(w io.Writer, every time.Duration) func() {
	start := time.Now()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				printProgress(w, start)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			printProgress(w, start)
		})
	}
}

func printProgress(w io.Writer, start time.Time) {
	snap := obs.Default.Snapshot()
	total := snap["sweep_runs_total"]
	if total <= 0 {
		return
	}
	completed := snap["sweep_runs_completed_total"]
	failed := snap["sweep_runs_failed_total"]
	skipped := snap["sweep_runs_skipped_total"]
	doneRuns := completed + failed + skipped
	elapsed := time.Since(start)
	line := fmt.Sprintf("bssweep: %.0f/%.0f runs done (%.0f failed, %.0f resumed), elapsed %s",
		doneRuns, total, failed, skipped, elapsed.Round(time.Second))
	// ETA from this process's executed-run rate; resumed runs cost nothing,
	// so they are excluded from the rate.
	if executed := completed + failed; executed > 0 {
		if remaining := total - doneRuns; remaining > 0 {
			eta := time.Duration(float64(elapsed) / executed * remaining)
			line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
		}
	}
	fmt.Fprintln(w, line)
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("bssweep report", flag.ContinueOnError)
	root := fs.String("root", "", "sweep root directory")
	metric := fs.String("metric", "", "metric for the comparison table (see bssweep params)")
	rows := fs.String("rows", "", "sweep parameter on table rows")
	cols := fs.String("cols", "", "sweep parameter on table columns (optional)")
	csvPath := fs.String("csv", "", "also write the CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" {
		return fmt.Errorf("report needs -root")
	}
	recs, err := sweep.LoadSummaries(*root)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no completed runs in %s (run or resume the sweep first)", *root)
	}
	entries, err := sweep.LoadManifest(*root)
	if err != nil {
		return err
	}
	// Manifest entries load as a map keyed by run ID; warn in sorted order
	// so repeated report invocations print identically.
	runIDs := make([]string, 0, len(entries))
	for id := range entries {
		runIDs = append(runIDs, id)
	}
	sort.Strings(runIDs)
	failed := 0
	for _, id := range runIDs {
		if e := entries[id]; e.Status == sweep.StatusFailed {
			failed++
			fmt.Fprintf(os.Stderr, "bssweep: warning: run %s failed: %s\n", e.RunID, e.Error)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bssweep: warning: %d failed runs excluded from the report; resume to retry them\n", failed)
	}

	var csv string
	if *rows != "" || *metric != "" {
		if *rows == "" || *metric == "" {
			return fmt.Errorf("comparison tables need both -rows and -metric")
		}
		table, err := analysis.ComputeSweepTable(recs, *rows, *cols, *metric)
		if err != nil {
			return err
		}
		fmt.Print(table.Render())
		csv = table.CSV()
	} else {
		csv = analysis.SweepCSV(recs)
		fmt.Print(csv)
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Fprintf(os.Stderr, "bssweep: wrote %s\n", *csvPath)
	}
	return nil
}

func cmdParams() error {
	fmt.Println("sweepable parameters (axis/case keys):")
	for _, p := range sweep.KnownParams() {
		fmt.Printf("  %-26s %s\n", p, sweep.ParamDoc(p))
	}
	fmt.Println("\nreport metrics:")
	fmt.Printf("  %s\n", strings.Join(analysis.SweepMetrics(), ", "))
	fmt.Println("  coverage:<monitor>")
	fmt.Printf("  <report>:<metric> for any extra report a spec requests (registered: %s)\n",
		strings.Join(report.Names(), ", "))
	return nil
}
